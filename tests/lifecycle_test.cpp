// Lifecycle tests for the mutable IVF+RaBitQ index: delete/update/compaction
// correctness cross-checked against brute force over the live set, recall
// parity between a mutated index and a fresh rebuild of the same live
// vectors, the amortized-O(1) single-vector append regression, and a
// multi-threaded churn stress (interleaved Search/Insert/Delete/Update plus
// background compaction through SearchEngine).

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <set>
#include <thread>
#include <vector>

#include "engine/search_engine.h"
#include "index/brute_force.h"
#include "index/ivf.h"
#include "linalg/vector_ops.h"
#include "util/prng.h"

namespace rabitq {
namespace {

Matrix ClusteredData(std::size_t n, std::size_t dim, std::size_t clusters,
                     std::uint64_t seed) {
  Rng rng(seed);
  Matrix centers(clusters, dim);
  for (std::size_t i = 0; i < centers.size(); ++i) {
    centers.data()[i] = static_cast<float>(rng.Gaussian()) * 8.0f;
  }
  Matrix data(n, dim);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t c = rng.UniformInt(clusters);
    for (std::size_t j = 0; j < dim; ++j) {
      data.At(i, j) = centers.At(c, j) + static_cast<float>(rng.Gaussian());
    }
  }
  return data;
}

IvfRabitqIndex BuildIndex(const Matrix& data, std::size_t num_lists) {
  IvfRabitqIndex index;
  IvfConfig ivf;
  ivf.num_lists = num_lists;
  EXPECT_TRUE(index.Build(data, ivf, RabitqConfig{}).ok());
  return index;
}

// Exact top-k over the rows of `data` whose id passes `alive`.
std::vector<Neighbor> BruteForceLive(const Matrix& data, const float* query,
                                     std::size_t k,
                                     const std::vector<bool>& alive) {
  TopKHeap heap(k);
  for (std::size_t i = 0; i < data.rows(); ++i) {
    if (!alive[i]) continue;
    heap.Push(L2SqrDistance(data.Row(i), query, data.cols()),
              static_cast<std::uint32_t>(i));
  }
  return heap.ExtractSorted();
}

double RecallAgainst(const std::vector<Neighbor>& got,
                     const std::vector<Neighbor>& truth) {
  std::set<std::uint32_t> truth_ids;
  for (const Neighbor& n : truth) truth_ids.insert(n.second);
  std::size_t hit = 0;
  for (const Neighbor& n : got) hit += truth_ids.count(n.second);
  return truth.empty() ? 1.0
                       : static_cast<double>(hit) /
                             static_cast<double>(truth.size());
}

class LifecycleTest : public ::testing::Test {
 protected:
  static constexpr std::size_t kN = 2000;
  static constexpr std::size_t kDim = 32;
  static constexpr std::size_t kLists = 20;
  static constexpr std::size_t kNumQueries = 32;
  static constexpr std::size_t kK = 10;

  void SetUp() override {
    data_ = ClusteredData(kN, kDim, 10, 7);
    queries_ = ClusteredData(kNumQueries, kDim, 10, 8);
    params_.k = kK;
    params_.nprobe = kLists;  // full probe: isolates lifecycle effects
  }

  void RunEngineChurnStress(std::size_t num_shards);

  Matrix data_;
  Matrix queries_;
  IvfSearchParams params_;
};

TEST_F(LifecycleTest, DeleteHidesVectorImmediately) {
  IvfRabitqIndex index = BuildIndex(data_, kLists);
  ASSERT_EQ(index.live_size(), kN);

  // The vector nearest to itself is its own top-1; after Delete it vanishes.
  std::vector<Neighbor> out;
  ASSERT_TRUE(index.Search(data_.Row(5), params_, /*seed=*/1, &out).ok());
  ASSERT_FALSE(out.empty());
  EXPECT_EQ(out[0].second, 5u);

  ASSERT_TRUE(index.Delete(5).ok());
  EXPECT_TRUE(index.IsDeleted(5));
  EXPECT_EQ(index.live_size(), kN - 1);
  EXPECT_EQ(index.num_tombstones(), 1u);

  ASSERT_TRUE(index.Search(data_.Row(5), params_, /*seed=*/1, &out).ok());
  for (const Neighbor& n : out) EXPECT_NE(n.second, 5u);

  // Double delete and out-of-range ids are rejected.
  EXPECT_EQ(index.Delete(5).code(), StatusCode::kNotFound);
  EXPECT_EQ(index.Delete(kN + 17).code(), StatusCode::kNotFound);
}

TEST_F(LifecycleTest, HalfDeletedMatchesBruteForceOverLiveSet) {
  IvfRabitqIndex index = BuildIndex(data_, kLists);
  std::vector<bool> alive(kN, true);
  for (std::uint32_t id = 0; id < kN; id += 2) {
    ASSERT_TRUE(index.Delete(id).ok());
    alive[id] = false;
  }
  ASSERT_EQ(index.live_size(), kN / 2);

  double recall_sum = 0.0;
  for (std::size_t q = 0; q < kNumQueries; ++q) {
    std::vector<Neighbor> got;
    ASSERT_TRUE(index.Search(queries_.Row(q), params_, 100 + q, &got).ok());
    const auto truth = BruteForceLive(data_, queries_.Row(q), kK, alive);
    for (const Neighbor& n : got) {
      EXPECT_TRUE(alive[n.second]) << "deleted id " << n.second << " returned";
    }
    recall_sum += RecallAgainst(got, truth);
  }
  // Full probe + error-bound re-ranking is near-exact over the live set.
  EXPECT_GE(recall_sum / kNumQueries, 0.99);
}

TEST_F(LifecycleTest, SearchSkipsDeletedUnderAllRerankPolicies) {
  IvfRabitqIndex index = BuildIndex(data_, kLists);
  std::vector<bool> alive(kN, true);
  Rng pick(42);
  for (std::size_t i = 0; i < kN / 3; ++i) {
    const std::uint32_t id = static_cast<std::uint32_t>(pick.UniformInt(kN));
    if (!alive[id]) continue;
    ASSERT_TRUE(index.Delete(id).ok());
    alive[id] = false;
  }
  for (const RerankPolicy policy :
       {RerankPolicy::kErrorBound, RerankPolicy::kFixedCandidates,
        RerankPolicy::kNone}) {
    IvfSearchParams params = params_;
    params.policy = policy;
    for (std::size_t q = 0; q < 8; ++q) {
      std::vector<Neighbor> got;
      ASSERT_TRUE(index.Search(queries_.Row(q), params, 7 + q, &got).ok());
      ASSERT_FALSE(got.empty());
      for (const Neighbor& n : got) {
        EXPECT_TRUE(alive[n.second])
            << "policy " << static_cast<int>(policy) << " returned deleted id";
      }
    }
  }
}

TEST_F(LifecycleTest, UpdateRelocatesVectorKeepingItsId) {
  IvfRabitqIndex index = BuildIndex(data_, kLists);
  // Move id 10 far away from everything, beyond any existing cluster.
  std::vector<float> moved(kDim, 100.0f);
  ASSERT_TRUE(index.Update(10, moved.data()).ok());
  EXPECT_EQ(index.live_size(), kN);
  EXPECT_GE(index.num_tombstones(), 1u);
  EXPECT_FALSE(index.IsDeleted(10));

  // Searching the new location finds the id at ~zero distance...
  IvfSearchParams one = params_;
  one.k = 1;
  std::vector<Neighbor> out;
  ASSERT_TRUE(index.Search(moved.data(), one, /*seed=*/3, &out).ok());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].second, 10u);
  EXPECT_NEAR(out[0].first, 0.0f, 1e-3f);

  // ...and the old location no longer returns it.
  ASSERT_TRUE(index.Search(data_.Row(10), params_, /*seed=*/4, &out).ok());
  for (const Neighbor& n : out) EXPECT_NE(n.second, 10u);

  // Updating a deleted id is rejected.
  ASSERT_TRUE(index.Delete(11).ok());
  EXPECT_EQ(index.Update(11, moved.data()).code(), StatusCode::kNotFound);
}

TEST_F(LifecycleTest, CompactionDropsTombstonesAndPreservesResults) {
  IvfRabitqIndex index = BuildIndex(data_, kLists);
  std::vector<bool> alive(kN, true);
  for (std::uint32_t id = 0; id < kN; id += 2) {
    ASSERT_TRUE(index.Delete(id).ok());
    alive[id] = false;
  }

  std::vector<std::vector<Neighbor>> before(kNumQueries);
  for (std::size_t q = 0; q < kNumQueries; ++q) {
    ASSERT_TRUE(
        index.Search(queries_.Row(q), params_, 500 + q, &before[q]).ok());
  }

  ASSERT_TRUE(index.Compact().ok());
  EXPECT_EQ(index.num_tombstones(), 0u);
  EXPECT_EQ(index.live_size(), kN / 2);
  for (std::size_t l = 0; l < index.num_lists(); ++l) {
    EXPECT_EQ(index.list_tombstones(l), 0u);
    EXPECT_EQ(index.list_ids(l).size(), index.list_codes(l).size());
  }

  // Same seeds after compaction: the live candidate sequence is unchanged
  // (compaction preserves relative order), so results are bit-identical.
  for (std::size_t q = 0; q < kNumQueries; ++q) {
    std::vector<Neighbor> after;
    ASSERT_TRUE(
        index.Search(queries_.Row(q), params_, 500 + q, &after).ok());
    ASSERT_EQ(after.size(), before[q].size());
    for (std::size_t i = 0; i < after.size(); ++i) {
      EXPECT_EQ(after[i].second, before[q][i].second);
      EXPECT_EQ(after[i].first, before[q][i].first);
    }
  }

  // A deleted vector stays findable-by-absence after its raw row is reused
  // as tombstone-free storage: deleted ids remain deleted.
  EXPECT_TRUE(index.IsDeleted(0));
}

// Acceptance criterion of the lifecycle tentpole: recall@10 of a 50%-deleted
// then compacted index matches a fresh rebuild over the same live vectors
// within 0.5 pt.
TEST_F(LifecycleTest, CompactedIndexMatchesFreshRebuildRecall) {
  IvfRabitqIndex mutated = BuildIndex(data_, kLists);
  std::vector<bool> alive(kN, true);
  Rng pick(1234);
  std::size_t deleted = 0;
  while (deleted < kN / 2) {
    const std::uint32_t id = static_cast<std::uint32_t>(pick.UniformInt(kN));
    if (!alive[id]) continue;
    ASSERT_TRUE(mutated.Delete(id).ok());
    alive[id] = false;
    ++deleted;
  }
  ASSERT_TRUE(mutated.Compact().ok());

  // Fresh index over the live vectors only; fresh id f maps to original id.
  Matrix live_data(kN / 2, kDim);
  std::vector<std::uint32_t> fresh_to_orig;
  for (std::size_t i = 0; i < kN; ++i) {
    if (!alive[i]) continue;
    std::copy_n(data_.Row(i), kDim, live_data.Row(fresh_to_orig.size()));
    fresh_to_orig.push_back(static_cast<std::uint32_t>(i));
  }
  IvfRabitqIndex fresh = BuildIndex(live_data, kLists);

  // Full probe + a conservative eps0: both searches re-rank essentially
  // every bound-plausible candidate, so any recall gap comes from the
  // lifecycle machinery (wrong tombstones, corrupted codes) rather than
  // from estimator tail noise -- which is what this criterion is about.
  IvfSearchParams params = params_;
  params.epsilon0_override = 2.5f;
  const std::size_t queries = kNumQueries;
  double recall_mutated = 0.0, recall_fresh = 0.0;
  for (std::size_t q = 0; q < queries; ++q) {
    const auto truth = BruteForceLive(data_, queries_.Row(q), kK, alive);
    std::vector<Neighbor> got_mutated, got_fresh;
    ASSERT_TRUE(
        mutated.Search(queries_.Row(q), params, 900 + q, &got_mutated).ok());
    ASSERT_TRUE(
        fresh.Search(queries_.Row(q), params, 900 + q, &got_fresh).ok());
    for (Neighbor& n : got_fresh) n.second = fresh_to_orig[n.second];
    recall_mutated += RecallAgainst(got_mutated, truth);
    recall_fresh += RecallAgainst(got_fresh, truth);
  }
  recall_mutated /= queries;
  recall_fresh /= queries;
  EXPECT_NEAR(recall_mutated, recall_fresh, 0.005)
      << "mutated=" << recall_mutated << " fresh=" << recall_fresh;
}

// The O(N^2)-append regression guard: 10k single-vector Adds must complete
// within a generous wall budget (chunked storage + incremental fast-scan
// repack make each one O(dim + B/4) amortized; the old full-matrix copy
// plus full-list repack took minutes at this scale).
TEST_F(LifecycleTest, TenThousandSingleInsertsStayCheap) {
  IvfRabitqIndex index = BuildIndex(ClusteredData(500, kDim, 10, 3), 16);
  const Matrix extra = ClusteredData(10000, kDim, 10, 4);
  const auto start = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < extra.rows(); ++i) {
    std::uint32_t id = 0;
    ASSERT_TRUE(index.Add(extra.Row(i), &id).ok());
    ASSERT_EQ(id, 500 + i);
  }
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  EXPECT_EQ(index.size(), 10500u);
  EXPECT_EQ(index.live_size(), 10500u);
  // Measured ~0.1 s on a dev box; 20 s keeps slow CI safe while still
  // failing hard on any quadratic regression.
  EXPECT_LT(seconds, 20.0);

  // Spot-check correctness: the last insert is its own nearest neighbor.
  IvfSearchParams one;
  one.k = 1;
  one.nprobe = index.num_lists();
  std::vector<Neighbor> out;
  ASSERT_TRUE(index.Search(extra.Row(9999), one, /*seed=*/11, &out).ok());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].second, 10499u);
}

// Shard count for the sharded variants of the stress tests; the CI matrix
// sweeps it (SHARDS=1 and SHARDS=4).
std::size_t EnvShards(std::size_t fallback) {
  const char* value = std::getenv("SHARDS");
  if (value == nullptr) return fallback;
  const long parsed = std::atol(value);
  return parsed > 0 ? static_cast<std::size_t>(parsed) : fallback;
}

// Interleaved Search/Insert/Delete/Update from many threads through the
// engine, with an aggressive compaction trigger so background compactions
// overlap the churn. Asserts no failures, consistent final accounting
// (aggregated across shards), and post-quiesce searchability of the
// survivors. Runs both unsharded (num_shards == 1) and sharded, where
// mutators hash across shards and contend on different writer mutexes.
void LifecycleTest::RunEngineChurnStress(std::size_t num_shards) {
  EngineConfig config;
  config.num_threads = 4;
  config.compaction_tombstone_ratio = 0.10f;
  config.compaction_min_dead = 4;
  ShardedIndex sharded;
  ShardedConfig sharded_config;
  sharded_config.num_shards = num_shards;
  sharded_config.ivf.num_lists = kLists;
  ASSERT_TRUE(sharded.Build(data_, sharded_config).ok());
  SearchEngine engine(std::move(sharded), config);
  ASSERT_EQ(engine.num_shards(), num_shards);

  constexpr std::size_t kMutators = 2;
  constexpr std::size_t kSearchers = 3;
  constexpr std::size_t kOpsPerMutator = 300;
  std::atomic<bool> stop{false};
  std::atomic<std::size_t> searches{0};
  std::atomic<std::size_t> deletes_done{0}, updates_done{0}, inserts_done{0};

  std::vector<std::thread> searchers;
  for (std::size_t t = 0; t < kSearchers; ++t) {
    searchers.emplace_back([&, t] {
      std::size_t i = t;
      while (!stop.load(std::memory_order_relaxed)) {
        EngineResult r =
            engine.SubmitAsync(queries_.Row(i % kNumQueries), params_).get();
        ASSERT_TRUE(r.status.ok()) << r.status.ToString();
        searches.fetch_add(1, std::memory_order_relaxed);
        ++i;
      }
    });
  }

  // Mutator m owns ids congruent to m (mod kMutators) so two threads never
  // race to delete the same id; inserts create fresh ids owned by no one.
  std::vector<std::thread> mutators;
  for (std::size_t m = 0; m < kMutators; ++m) {
    mutators.emplace_back([&, m] {
      Rng rng(1000 + m);
      std::uint32_t next_owned = static_cast<std::uint32_t>(m);
      for (std::size_t op = 0; op < kOpsPerMutator; ++op) {
        const std::uint64_t dice = rng.UniformInt(3);
        if (dice == 0 && next_owned < kN) {
          ASSERT_TRUE(engine.Delete(next_owned).ok());
          deletes_done.fetch_add(1, std::memory_order_relaxed);
          next_owned += kMutators;
        } else if (dice == 1 && next_owned < kN) {
          std::vector<float> vec(kDim);
          for (auto& v : vec) v = static_cast<float>(rng.Gaussian()) * 8.0f;
          ASSERT_TRUE(engine.Update(next_owned, vec.data()).ok());
          updates_done.fetch_add(1, std::memory_order_relaxed);
        } else {
          std::vector<float> vec(kDim);
          for (auto& v : vec) v = static_cast<float>(rng.Gaussian()) * 8.0f;
          ASSERT_TRUE(engine.Insert(vec.data()).ok());
          inserts_done.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& t : mutators) t.join();
  // Keep serving a little while after the churn, then quiesce. Deadline-
  // bounded so a searcher regression fails the count check instead of
  // hanging the test.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (searches.load(std::memory_order_relaxed) < 50 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::yield();
  }
  stop.store(true, std::memory_order_relaxed);
  for (auto& t : searchers) t.join();

  const EngineStatsSnapshot stats = engine.Stats();
  EXPECT_EQ(stats.inserts, inserts_done.load());
  EXPECT_EQ(stats.deletes, deletes_done.load());
  EXPECT_EQ(stats.updates, updates_done.load());
  EXPECT_EQ(stats.search_errors, 0u);
  EXPECT_EQ(stats.live_vectors,
            kN + inserts_done.load() - deletes_done.load());
  EXPECT_EQ(engine.size(), kN + inserts_done.load());
  EXPECT_EQ(engine.live_size(), kN + inserts_done.load() - deletes_done.load());

  // Lifecycle gauges must be exact AGGREGATES over the shards: writers are
  // quiesced, so summing per-shard accounting has to reproduce both the
  // engine stats and the global counts.
  const ShardedIndex& index = engine.index();
  ASSERT_EQ(index.num_shards(), num_shards);
  std::size_t shard_live = 0, shard_tombstones = 0, shard_ids = 0;
  for (std::size_t s = 0; s < index.num_shards(); ++s) {
    shard_live += index.shard(s).live_size();
    shard_tombstones += index.shard(s).num_tombstones();
    shard_ids += index.shard(s).size();
  }
  EXPECT_EQ(shard_live, stats.live_vectors);
  EXPECT_EQ(shard_tombstones, stats.tombstones);
  EXPECT_EQ(shard_ids, engine.size());
  EXPECT_EQ(stats.num_shards, num_shards);

  // Drain every remaining tombstone, then verify the index agrees with
  // itself: every live id is its own nearest neighbor at full probe.
  ASSERT_TRUE(engine.CompactNow().ok());
  const EngineStatsSnapshot after = engine.Stats();
  EXPECT_EQ(after.tombstones, 0u);
  for (std::size_t s = 0; s < index.num_shards(); ++s) {
    EXPECT_EQ(index.shard(s).num_tombstones(), 0u) << "shard " << s;
  }
  IvfSearchParams one = params_;
  one.k = 1;
  one.nprobe = index.num_lists();
  Rng rng(77);
  for (std::uint32_t id = 0; id < index.size(); ++id) {
    if (index.IsDeleted(id)) continue;
    if (rng.UniformInt(10) != 0) continue;  // sample 10% for speed
    std::vector<Neighbor> out;
    ASSERT_TRUE(index.Search(index.vector(id), one, 5000 + id, &out).ok());
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].second, id);
    EXPECT_NEAR(out[0].first, 0.0f, 1e-3f);
  }
}

TEST_F(LifecycleTest, EngineChurnStress) { RunEngineChurnStress(1); }

TEST_F(LifecycleTest, EngineChurnStressSharded) {
  RunEngineChurnStress(EnvShards(4));
}

// Background compaction actually fires on its own when the tombstone ratio
// crosses the configured threshold.
TEST_F(LifecycleTest, BackgroundCompactionTriggers) {
  EngineConfig config;
  config.compaction_tombstone_ratio = 0.20f;
  config.compaction_min_dead = 8;
  SearchEngine engine(BuildIndex(data_, kLists), config);

  for (std::uint32_t id = 0; id < kN / 2; ++id) {
    ASSERT_TRUE(engine.Delete(id).ok());
  }
  // The compactor runs asynchronously; give it a bounded grace period.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (engine.Stats().compactions == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  const EngineStatsSnapshot stats = engine.Stats();
  EXPECT_GT(stats.compactions, 0u) << "background compactor never fired";
  // Whatever the compactor already drained, accounting must balance.
  EXPECT_EQ(stats.live_vectors, kN / 2);
  EXPECT_EQ(stats.deletes, kN / 2);
}

}  // namespace
}  // namespace rabitq
