// Tests for binary serialization: primitive round trips, header validation,
// IvfRabitqIndex save/load fidelity (identical search results), corruption
// rejection, and incremental Add after build/load.

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "eval/ground_truth.h"
#include "eval/metrics.h"
#include "index/ivf.h"
#include "util/prng.h"
#include "util/serialize.h"

namespace rabitq {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(BinarySerializeTest, PrimitiveRoundTrip) {
  const std::string path = TempPath("prim.bin");
  {
    std::unique_ptr<BinaryWriter> writer;
    ASSERT_TRUE(BinaryWriter::Open(path, &writer).ok());
    ASSERT_TRUE(writer->WriteU32(0xDEADBEEF).ok());
    ASSERT_TRUE(writer->WriteU64(0x0123456789ABCDEFULL).ok());
    ASSERT_TRUE(writer->WriteF32(3.25f).ok());
    const std::uint32_t arr[3] = {7, 8, 9};
    ASSERT_TRUE(writer->WriteArray(arr, 3).ok());
    ASSERT_TRUE(writer->Close().ok());
  }
  std::unique_ptr<BinaryReader> reader;
  ASSERT_TRUE(BinaryReader::Open(path, &reader).ok());
  std::uint32_t u32;
  std::uint64_t u64;
  float f32;
  std::vector<std::uint32_t> arr;
  ASSERT_TRUE(reader->ReadU32(&u32).ok());
  ASSERT_TRUE(reader->ReadU64(&u64).ok());
  ASSERT_TRUE(reader->ReadF32(&f32).ok());
  ASSERT_TRUE((reader->ReadArray<std::uint32_t>(&arr)).ok());
  EXPECT_EQ(u32, 0xDEADBEEF);
  EXPECT_EQ(u64, 0x0123456789ABCDEFULL);
  EXPECT_FLOAT_EQ(f32, 3.25f);
  EXPECT_EQ(arr, (std::vector<std::uint32_t>{7, 8, 9}));
  // Reading past the end fails cleanly.
  EXPECT_FALSE(reader->ReadU32(&u32).ok());
  std::remove(path.c_str());
}

TEST(BinarySerializeTest, HeaderValidation) {
  const std::string path = TempPath("header.bin");
  const char magic[8] = {'T', 'E', 'S', 'T', '0', '0', '0', '1'};
  {
    std::unique_ptr<BinaryWriter> writer;
    ASSERT_TRUE(BinaryWriter::Open(path, &writer).ok());
    ASSERT_TRUE(WriteHeader(writer.get(), magic, 3).ok());
    ASSERT_TRUE(writer->Close().ok());
  }
  {
    std::unique_ptr<BinaryReader> reader;
    ASSERT_TRUE(BinaryReader::Open(path, &reader).ok());
    EXPECT_TRUE(ExpectHeader(reader.get(), magic, 3).ok());
  }
  {
    std::unique_ptr<BinaryReader> reader;
    ASSERT_TRUE(BinaryReader::Open(path, &reader).ok());
    const char wrong[8] = {'W', 'R', 'O', 'N', 'G', '!', '!', '!'};
    EXPECT_FALSE(ExpectHeader(reader.get(), wrong, 3).ok());
  }
  {
    std::unique_ptr<BinaryReader> reader;
    ASSERT_TRUE(BinaryReader::Open(path, &reader).ok());
    EXPECT_FALSE(ExpectHeader(reader.get(), magic, 4).ok());  // version
  }
  std::remove(path.c_str());
}

TEST(BinarySerializeTest, ArraySanityBoundRejectsHugeCounts) {
  const std::string path = TempPath("huge.bin");
  {
    std::unique_ptr<BinaryWriter> writer;
    ASSERT_TRUE(BinaryWriter::Open(path, &writer).ok());
    ASSERT_TRUE(writer->WriteU64(std::uint64_t{1} << 50).ok());
    ASSERT_TRUE(writer->Close().ok());
  }
  std::unique_ptr<BinaryReader> reader;
  ASSERT_TRUE(BinaryReader::Open(path, &reader).ok());
  std::vector<std::uint32_t> arr;
  EXPECT_FALSE((reader->ReadArray<std::uint32_t>(&arr, 1000)).ok());
  std::remove(path.c_str());
}

class IvfSerializeTest : public ::testing::Test {
 protected:
  static constexpr std::size_t kN = 2000;
  static constexpr std::size_t kDim = 40;

  void SetUp() override {
    Rng rng(77);
    data_.Reset(kN, kDim);
    for (std::size_t i = 0; i < data_.size(); ++i) {
      data_.data()[i] = static_cast<float>(rng.Gaussian());
    }
    queries_.Reset(10, kDim);
    for (std::size_t i = 0; i < queries_.size(); ++i) {
      queries_.data()[i] = static_cast<float>(rng.Gaussian());
    }
    IvfConfig ivf;
    ivf.num_lists = 16;
    ASSERT_TRUE(index_.Build(data_, ivf, RabitqConfig{}).ok());
  }

  Matrix data_;
  Matrix queries_;
  IvfRabitqIndex index_;
};

TEST_F(IvfSerializeTest, SaveLoadRoundTripPreservesSearchResults) {
  const std::string path = TempPath("index.rbq");
  ASSERT_TRUE(index_.Save(path).ok());
  IvfRabitqIndex loaded;
  ASSERT_TRUE(loaded.Load(path).ok());
  EXPECT_EQ(loaded.size(), index_.size());
  EXPECT_EQ(loaded.dim(), index_.dim());
  EXPECT_EQ(loaded.num_lists(), index_.num_lists());
  EXPECT_EQ(loaded.encoder().total_bits(), index_.encoder().total_bits());

  IvfSearchParams params;
  params.k = 10;
  params.nprobe = 16;
  for (std::size_t q = 0; q < queries_.rows(); ++q) {
    // Same rng stream -> identical randomized rounding -> identical results.
    Rng rng_a(900 + q), rng_b(900 + q);
    std::vector<Neighbor> original, restored;
    ASSERT_TRUE(
        index_.Search(queries_.Row(q), params, &rng_a, &original).ok());
    ASSERT_TRUE(
        loaded.Search(queries_.Row(q), params, &rng_b, &restored).ok());
    ASSERT_EQ(original.size(), restored.size());
    for (std::size_t i = 0; i < original.size(); ++i) {
      EXPECT_EQ(original[i].second, restored[i].second);
      EXPECT_FLOAT_EQ(original[i].first, restored[i].first);
    }
  }
  std::remove(path.c_str());
}

TEST_F(IvfSerializeTest, LoadedStoreMatchesByteForByte) {
  const std::string path = TempPath("index2.rbq");
  ASSERT_TRUE(index_.Save(path).ok());
  IvfRabitqIndex loaded;
  ASSERT_TRUE(loaded.Load(path).ok());
  for (std::size_t l = 0; l < index_.num_lists(); ++l) {
    ASSERT_EQ(loaded.list_ids(l), index_.list_ids(l));
    const RabitqCodeStore& a = index_.list_codes(l);
    const RabitqCodeStore& b = loaded.list_codes(l);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_FLOAT_EQ(a.o_o(i), b.o_o(i));
      EXPECT_FLOAT_EQ(a.dist_to_centroid(i), b.dist_to_centroid(i));
      EXPECT_EQ(a.bit_count(i), b.bit_count(i));
      for (std::size_t w = 0; w < a.words_per_code(); ++w) {
        ASSERT_EQ(a.BitsAt(i)[w], b.BitsAt(i)[w]);
      }
    }
  }
  std::remove(path.c_str());
}

TEST_F(IvfSerializeTest, TruncatedFileRejected) {
  const std::string path = TempPath("trunc.rbq");
  ASSERT_TRUE(index_.Save(path).ok());
  // Truncate to half.
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fclose(f);
  std::vector<char> buf(size / 2);
  f = std::fopen(path.c_str(), "rb");
  ASSERT_EQ(std::fread(buf.data(), 1, buf.size(), f), buf.size());
  std::fclose(f);
  f = std::fopen(path.c_str(), "wb");
  std::fwrite(buf.data(), 1, buf.size(), f);
  std::fclose(f);

  IvfRabitqIndex loaded;
  EXPECT_FALSE(loaded.Load(path).ok());
  std::remove(path.c_str());
}

TEST_F(IvfSerializeTest, GarbageFileRejected) {
  const std::string path = TempPath("garbage.rbq");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  for (int i = 0; i < 1000; ++i) std::fputc(i & 0xFF, f);
  std::fclose(f);
  IvfRabitqIndex loaded;
  EXPECT_FALSE(loaded.Load(path).ok());
  std::remove(path.c_str());
  EXPECT_FALSE(loaded.Load("/nonexistent/file.rbq").ok());
}

TEST_F(IvfSerializeTest, AddInsertsSearchableVector) {
  Rng rng(5);
  std::vector<float> novel(kDim);
  for (auto& v : novel) v = static_cast<float>(rng.Gaussian()) + 10.0f;
  std::uint32_t id = 0;
  ASSERT_TRUE(index_.Add(novel.data(), &id).ok());
  EXPECT_EQ(id, kN);
  EXPECT_EQ(index_.size(), kN + 1);

  IvfSearchParams params;
  params.k = 1;
  params.nprobe = index_.num_lists();
  std::vector<Neighbor> result;
  ASSERT_TRUE(index_.Search(novel.data(), params, &rng, &result).ok());
  ASSERT_FALSE(result.empty());
  EXPECT_EQ(result[0].second, id);
  EXPECT_NEAR(result[0].first, 0.0f, 1e-4f);
}

TEST_F(IvfSerializeTest, AddSurvivesSaveLoad) {
  Rng rng(6);
  std::vector<float> novel(kDim, 2.5f);
  ASSERT_TRUE(index_.Add(novel.data(), nullptr).ok());
  const std::string path = TempPath("with_add.rbq");
  ASSERT_TRUE(index_.Save(path).ok());
  IvfRabitqIndex loaded;
  ASSERT_TRUE(loaded.Load(path).ok());
  EXPECT_EQ(loaded.size(), kN + 1);
  // And the loaded index accepts further inserts.
  std::uint32_t id = 0;
  ASSERT_TRUE(loaded.Add(novel.data(), &id).ok());
  EXPECT_EQ(id, kN + 1);
  std::remove(path.c_str());
}

TEST(IvfSerializeStandaloneTest, SaveUnbuiltIndexFails) {
  IvfRabitqIndex index;
  EXPECT_EQ(index.Save(TempPath("nope.rbq")).code(),
            StatusCode::kFailedPrecondition);
  std::vector<float> v(8, 0.0f);
  EXPECT_EQ(index.Add(v.data()).code(), StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace rabitq
