// The fused SIMD estimate pipeline:
//   * the AVX2+FMA block assembly (EstimateBlockFused) is bit-identical to
//     its scalar reference across dims, code widths, non-multiple-of-8/32
//     tails, the B_q sweep, and the dist_to_centroid == 0 / q_dist == 0
//     edge cases;
//   * the in-kernel pruning variant returns exactly the survivors the
//     un-fused per-entry loop would have re-ranked (tombstone masks, tail
//     lanes, threshold semantics included);
//   * the per-code factors (f_sq/f_cross/f_inv_oo/f_err) computed at append
//     time survive every code-creation path bit-for-bit: FinalizeAppend,
//     CompactInto, and snapshot Load (v1 golden file and a v2 round trip --
//     the factors are never serialized, always recomputed).

#include <gtest/gtest.h>

#include <algorithm>
#include <cfloat>
#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include "core/estimator.h"
#include "core/query.h"
#include "core/rabitq.h"
#include "index/ivf.h"
#include "quant/fastscan.h"
#include "util/prng.h"

#ifndef RABITQ_TEST_DATA_DIR
#define RABITQ_TEST_DATA_DIR "tests/data"
#endif

namespace rabitq {
namespace {

std::vector<float> RandomVec(std::size_t dim, Rng* rng, float scale = 1.0f) {
  std::vector<float> v(dim);
  for (auto& x : v) x = static_cast<float>(rng->Gaussian()) * scale;
  return v;
}

// The factor formulas of RabitqCodeStore::Append, restated independently.
struct ExpectedFactors {
  float f_sq, f_cross, f_inv_oo, f_err;
};

ExpectedFactors FactorsOf(float dist, float o_o, std::size_t total_bits) {
  ExpectedFactors f;
  f.f_sq = dist * dist;
  f.f_cross = 2.0f * dist;
  const float o_c = std::max(o_o, 1e-9f);
  f.f_inv_oo = 1.0f / o_c;
  const float o_sq = std::max(o_c * o_c, 1e-12f);
  f.f_err = std::sqrt((1.0f - o_sq) / o_sq) /
            std::sqrt(static_cast<float>(total_bits - 1));
  return f;
}

void ExpectFactorsMatch(const RabitqCodeStore& store) {
  for (std::size_t i = 0; i < store.size(); ++i) {
    const ExpectedFactors want =
        FactorsOf(store.dist_to_centroid(i), store.o_o(i), store.total_bits());
    EXPECT_EQ(store.f_sq_data()[i], want.f_sq) << "code " << i;
    EXPECT_EQ(store.f_cross_data()[i], want.f_cross) << "code " << i;
    EXPECT_EQ(store.f_inv_oo_data()[i], want.f_inv_oo) << "code " << i;
    EXPECT_EQ(store.f_err_data()[i], want.f_err) << "code " << i;
  }
}

struct Workload {
  RabitqEncoder encoder;
  RabitqCodeStore store;
  Matrix queries;
  std::vector<float> centroid;
};

// n codes against a random centroid; code 0 is planted at the centroid
// itself (dist_to_centroid == 0) whenever n > 2.
void BuildWorkload(std::size_t dim, std::size_t n, std::size_t n_queries,
                   std::size_t total_bits, std::uint64_t seed, Workload* w) {
  Rng rng(seed);
  RabitqConfig config;
  config.total_bits = total_bits;
  config.seed = seed * 31 + 7;
  ASSERT_TRUE(w->encoder.Init(dim, config).ok());
  w->store.Init(w->encoder.total_bits());
  w->centroid = RandomVec(dim, &rng, 0.5f);
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<float> v = (i == 0 && n > 2) ? w->centroid : RandomVec(dim, &rng);
    ASSERT_TRUE(
        w->encoder.EncodeAppend(v.data(), w->centroid.data(), &w->store).ok());
  }
  w->store.Finalize();
  w->queries.Reset(n_queries, dim);
  for (std::size_t q = 0; q < n_queries; ++q) {
    const auto v = RandomVec(dim, &rng);
    std::copy_n(v.data(), dim, w->queries.Row(q));
  }
}

// Runs fused vs scalar over every block of `w.store` for one prepared query
// and checks bitwise equality of dist_sq and lower bounds on real lanes.
void ExpectFusedMatchesScalar(const Workload& w, const QuantizedQuery& qq,
                              float epsilon0) {
  ASSERT_TRUE(qq.has_exact_luts);
  const FastScanCodes& packed = w.store.packed();
  std::uint32_t sums[kFastScanBlockSize];
  for (std::size_t block = 0; block < packed.num_blocks; ++block) {
    FastScanAccumulateBlock(packed.BlockPtr(block), packed.num_segments,
                            qq.luts.data(), sums);
    float fused_d[kFastScanBlockSize], fused_lb[kFastScanBlockSize];
    float ref_d[kFastScanBlockSize], ref_lb[kFastScanBlockSize];
    EstimateBlockFused(qq, w.store, block, sums, epsilon0, fused_d, fused_lb);
    EstimateBlockFusedScalar(qq, w.store, block, sums, epsilon0, ref_d,
                             ref_lb);
    const std::size_t begin = block * kFastScanBlockSize;
    const std::size_t count =
        std::min(kFastScanBlockSize, w.store.size() - begin);
    for (std::size_t k = 0; k < count; ++k) {
      ASSERT_EQ(fused_d[k], ref_d[k]) << "block " << block << " lane " << k;
      ASSERT_EQ(fused_lb[k], ref_lb[k]) << "block " << block << " lane " << k;
      // And both match the single-code bitwise path exactly.
      const DistanceEstimate single =
          EstimateDistance(qq, w.store.View(begin + k), epsilon0);
      ASSERT_EQ(fused_d[k], single.dist_sq) << "block " << block << " lane "
                                            << k;
      ASSERT_EQ(fused_lb[k], single.lower_bound_sq)
          << "block " << block << " lane " << k;
    }
  }
}

TEST(FusedEstimatorTest, FusedMatchesScalarAcrossDimsAndTails) {
  // Dims straddling the 64-padding boundary; n values exercising every tail
  // shape: single code, sub-8, non-multiple-of-8, non-multiple-of-32, exact
  // blocks.
  const struct {
    std::size_t dim, bits;
  } shapes[] = {{50, 64}, {100, 128}, {120, 128}, {240, 256}};
  const std::size_t sizes[] = {1, 7, 31, 32, 33, 40, 100};
  for (const auto& shape : shapes) {
    for (const std::size_t n : sizes) {
      Workload w;
      BuildWorkload(shape.dim, n, 2, shape.bits, shape.dim * 1000 + n, &w);
      Rng rng(n * 13 + 1);
      for (std::size_t q = 0; q < w.queries.rows(); ++q) {
        QuantizedQuery qq;
        ASSERT_TRUE(PrepareQuery(w.encoder, w.queries.Row(q),
                                 w.centroid.data(), &rng, &qq)
                        .ok());
        ExpectFusedMatchesScalar(w, qq, 1.9f);
        ExpectFusedMatchesScalar(w, qq, 0.0f);  // bound computation skipped
      }
    }
  }
}

TEST(FusedEstimatorTest, FusedMatchesScalarAcrossQueryBits) {
  Workload w;
  BuildWorkload(96, 70, 1, 128, 77, &w);
  Rng rng(4);
  for (int bq = 1; bq <= 6; ++bq) {  // B_q <= 6 keeps the u8 LUTs exact
    QuantizedQuery qq;
    ASSERT_TRUE(PrepareQuery(w.encoder, w.queries.Row(0), w.centroid.data(),
                             &rng, &qq, /*query_bits_override=*/bq)
                    .ok());
    ExpectFusedMatchesScalar(w, qq, 1.9f);
  }
}

TEST(FusedEstimatorTest, FusedHandlesDegenerateQueryAndCode) {
  Workload w;
  BuildWorkload(64, 40, 1, 64, 99, &w);  // code 0 sits on the centroid
  Rng rng(6);
  // q == centroid: q_dist == 0, every estimate must be exactly f_sq.
  QuantizedQuery qq;
  ASSERT_TRUE(
      PrepareQuery(w.encoder, w.centroid.data(), w.centroid.data(), &rng, &qq)
          .ok());
  ExpectFusedMatchesScalar(w, qq, 1.9f);
  std::uint32_t sums[kFastScanBlockSize];
  const FastScanCodes& packed = w.store.packed();
  FastScanAccumulateBlock(packed.BlockPtr(0), packed.num_segments,
                          qq.luts.data(), sums);
  float d[kFastScanBlockSize], lb[kFastScanBlockSize];
  EstimateBlockFused(qq, w.store, 0, sums, 1.9f, d, lb);
  EXPECT_EQ(d[0], 0.0f);  // code 0: d == 0 AND q_dist == 0
  EXPECT_EQ(d[1], w.store.f_sq_data()[1]);
  EXPECT_EQ(lb[1], w.store.f_sq_data()[1]);

  // Generic query against the planted d == 0 code: exactly q_dist^2.
  QuantizedQuery qq2;
  ASSERT_TRUE(PrepareQuery(w.encoder, w.queries.Row(0), w.centroid.data(),
                           &rng, &qq2)
                  .ok());
  ExpectFusedMatchesScalar(w, qq2, 1.9f);
  FastScanAccumulateBlock(packed.BlockPtr(0), packed.num_segments,
                          qq2.luts.data(), sums);
  EstimateBlockFused(qq2, w.store, 0, sums, 1.9f, d, lb);
  EXPECT_EQ(d[0], qq2.q_dist * qq2.q_dist);
  EXPECT_EQ(lb[0], qq2.q_dist * qq2.q_dist);
}

TEST(FusedEstimatorTest, PrunedVariantMatchesScalarAndUnfusedSelection) {
  Workload w;
  BuildWorkload(100, 90, 3, 128, 55, &w);  // 2 full blocks + 26-lane tail
  Rng rng(8);
  Rng mask_rng(21);
  for (std::size_t q = 0; q < w.queries.rows(); ++q) {
    QuantizedQuery qq;
    ASSERT_TRUE(PrepareQuery(w.encoder, w.queries.Row(q), w.centroid.data(),
                             &rng, &qq)
                    .ok());
    // Random tombstone pattern (including the all-alive nullptr contract).
    std::vector<std::uint8_t> dead(w.store.size(), 0);
    for (auto& flag : dead) flag = mask_rng.UniformInt(4) == 0 ? 1 : 0;
    const FastScanCodes& packed = w.store.packed();
    std::uint32_t sums[kFastScanBlockSize];
    for (std::size_t block = 0; block < packed.num_blocks; ++block) {
      FastScanAccumulateBlock(packed.BlockPtr(block), packed.num_segments,
                              qq.luts.data(), sums);
      const std::size_t begin = block * kFastScanBlockSize;
      const std::size_t count =
          std::min(kFastScanBlockSize, w.store.size() - begin);
      // Reference lower bounds pick plausible thresholds: min, a mid value,
      // max, and the no-prune FLT_MAX sentinel.
      float ref_d[kFastScanBlockSize], ref_lb[kFastScanBlockSize];
      EstimateBlockFusedScalar(qq, w.store, block, sums, 1.9f, ref_d, ref_lb);
      const float lo = *std::min_element(ref_lb, ref_lb + count);
      const float hi = *std::max_element(ref_lb, ref_lb + count);
      const float thresholds[] = {lo, (lo + hi) / 2, hi, FLT_MAX};
      for (const float thr : thresholds) {
        for (const bool use_dead : {false, true}) {
          const std::uint8_t* dptr = use_dead ? dead.data() + begin : nullptr;
          float fd[kFastScanBlockSize], flb[kFastScanBlockSize];
          float sd[kFastScanBlockSize], slb[kFastScanBlockSize];
          const std::uint32_t fused_mask = EstimateBlockFusedPruned(
              qq, w.store, block, sums, 1.9f, thr, dptr, fd, flb);
          const std::uint32_t scalar_mask = EstimateBlockFusedPrunedScalar(
              qq, w.store, block, sums, 1.9f, thr, dptr, sd, slb);
          ASSERT_EQ(fused_mask, scalar_mask)
              << "block " << block << " thr " << thr;
          // The mask is exactly the set the un-fused loop would re-rank.
          for (std::size_t k = 0; k < kFastScanBlockSize; ++k) {
            const bool expect_survive =
                k < count && !(use_dead && dead[begin + k]) &&
                !(ref_lb[k] > thr);
            EXPECT_EQ((fused_mask >> k) & 1u, expect_survive ? 1u : 0u)
                << "block " << block << " lane " << k << " thr " << thr;
          }
          for (std::size_t k = 0; k < count; ++k) {
            ASSERT_EQ(fd[k], ref_d[k]);
            ASSERT_EQ(flb[k], ref_lb[k]);
          }
        }
      }
    }
  }
}

TEST(FusedEstimatorTest, InfiniteLowerBoundSurvivesInfinityThreshold) {
  // A dist_to_centroid large enough that f_sq = d^2 overflows makes the
  // whole estimate (and lower bound) +inf. The no-prune sentinel is
  // +infinity, under which such lanes must SURVIVE (the un-fused loop
  // re-ranks them while the heap is filling); a finite threshold prunes
  // them like any other too-distant candidate.
  RabitqEncoder enc;
  RabitqConfig config;
  config.total_bits = 64;
  ASSERT_TRUE(enc.Init(32, config).ok());
  RabitqCodeStore store(enc.total_bits());
  Rng rng(3);
  std::vector<float> centroid(32, 0.0f);
  std::vector<float> v(32);
  for (int i = 0; i < 8; ++i) {
    for (auto& x : v) x = static_cast<float>(rng.Gaussian());
    ASSERT_TRUE(enc.EncodeAppend(v.data(), centroid.data(), &store).ok());
  }
  // Hand-append a code whose squared distance overflows float.
  std::vector<std::uint64_t> bits(store.words_per_code(), 0x5555555555555555u);
  store.Append(bits.data(), FLT_MAX, 0.5f, 32);
  ASSERT_EQ(store.f_sq_data()[8], std::numeric_limits<float>::infinity());
  store.Finalize();

  std::vector<float> query(32, 1.0f);
  QuantizedQuery qq;
  ASSERT_TRUE(PrepareQuery(enc, query.data(), centroid.data(), &rng, &qq).ok());
  std::uint32_t sums[kFastScanBlockSize];
  FastScanAccumulateBlock(store.packed().BlockPtr(0),
                          store.packed().num_segments, qq.luts.data(), sums);
  float d[kFastScanBlockSize], lb[kFastScanBlockSize];
  const std::uint32_t all = EstimateBlockFusedPruned(
      qq, store, 0, sums, 1.9f, std::numeric_limits<float>::infinity(),
      nullptr, d, lb);
  // The overflowed lane's bound is non-finite (+inf, or NaN when the fma
  // collapses inf - inf); either way the un-fused loop would re-rank it
  // while the heap is filling, so the +inf sentinel must keep it.
  EXPECT_FALSE(std::isfinite(lb[8]));
  EXPECT_EQ(all, (1u << store.size()) - 1u)
      << "+inf sentinel must not prune any lane, non-finite bounds included";
  // Under a finite threshold, survival follows the scalar `!(lb > thr)`
  // semantics exactly (+inf is pruned, NaN survives), and the SIMD and
  // scalar variants agree on it.
  const std::uint32_t finite = EstimateBlockFusedPruned(
      qq, store, 0, sums, 1.9f, FLT_MAX, nullptr, d, lb);
  for (std::size_t k = 0; k < store.size(); ++k) {
    EXPECT_EQ((finite >> k) & 1u, !(lb[k] > FLT_MAX) ? 1u : 0u) << "lane " << k;
  }
  EXPECT_EQ(EstimateBlockFusedPrunedScalar(qq, store, 0, sums, 1.9f, FLT_MAX,
                                           nullptr, d, lb),
            finite);
}

TEST(FusedEstimatorTest, FactorsSurviveFinalizeAppendAndCompaction) {
  Workload w;
  BuildWorkload(60, 50, 1, 64, 33, &w);
  ExpectFactorsMatch(w.store);

  // Incremental appends (the Add path) compute the same factors.
  Rng rng(12);
  std::vector<float> v(60);
  for (int i = 0; i < 5; ++i) {
    for (auto& x : v) x = static_cast<float>(rng.Gaussian());
    ASSERT_TRUE(w.encoder.EncodeAppend(v.data(), w.centroid.data(), &w.store)
                    .ok());
    w.store.FinalizeAppend();
  }
  ExpectFactorsMatch(w.store);

  // Compaction recomputes factors bit-identically for the survivors.
  std::vector<std::uint8_t> dead(w.store.size(), 0);
  for (std::size_t i = 0; i < dead.size(); i += 3) dead[i] = 1;
  RabitqCodeStore compacted;
  w.store.CompactInto(dead.data(), &compacted);
  ExpectFactorsMatch(compacted);
  std::size_t live = 0;
  for (std::size_t i = 0; i < w.store.size(); ++i) {
    if (dead[i]) continue;
    EXPECT_EQ(compacted.f_sq_data()[live], w.store.f_sq_data()[i]);
    EXPECT_EQ(compacted.f_cross_data()[live], w.store.f_cross_data()[i]);
    EXPECT_EQ(compacted.f_inv_oo_data()[live], w.store.f_inv_oo_data()[i]);
    EXPECT_EQ(compacted.f_err_data()[live], w.store.f_err_data()[i]);
    ++live;
  }
  EXPECT_EQ(live, compacted.size());
}

TEST(FusedEstimatorTest, GoldenV1LoadRecomputesFactors) {
  // The committed pre-factor-era snapshot: Load must rebuild the factor
  // arrays from the stored (dist, o_o) floats -- no format bump -- and the
  // fused path over the loaded index must agree with the bitwise path.
  IvfRabitqIndex index;
  const std::string golden =
      std::string(RABITQ_TEST_DATA_DIR) + "/golden_v1.rbq";
  ASSERT_TRUE(index.Load(golden).ok()) << "cannot load v1 golden " << golden;
  std::size_t codes_checked = 0;
  for (std::size_t l = 0; l < index.num_lists(); ++l) {
    ExpectFactorsMatch(index.list_codes(l));
    codes_checked += index.list_codes(l).size();
  }
  EXPECT_EQ(codes_checked, index.size());

  // v2 round trip: factors after Save/Load are bit-identical to the
  // original in-memory ones (both recomputed from identical floats).
  const std::string path = ::testing::TempDir() + "/fused_factors_v2.rbq";
  ASSERT_TRUE(index.Save(path).ok());
  IvfRabitqIndex reloaded;
  ASSERT_TRUE(reloaded.Load(path).ok());
  ASSERT_EQ(reloaded.num_lists(), index.num_lists());
  for (std::size_t l = 0; l < index.num_lists(); ++l) {
    const RabitqCodeStore& a = index.list_codes(l);
    const RabitqCodeStore& b = reloaded.list_codes(l);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a.f_sq_data()[i], b.f_sq_data()[i]);
      EXPECT_EQ(a.f_cross_data()[i], b.f_cross_data()[i]);
      EXPECT_EQ(a.f_inv_oo_data()[i], b.f_inv_oo_data()[i]);
      EXPECT_EQ(a.f_err_data()[i], b.f_err_data()[i]);
    }
  }
  std::remove(path.c_str());

  // Fused batch vs bitwise single-code on the loaded golden index.
  Rng qrng(314);
  std::vector<float> query(index.dim());
  for (auto& x : query) x = static_cast<float>(qrng.Gaussian());
  for (std::size_t l = 0; l < index.num_lists(); ++l) {
    const RabitqCodeStore& store = index.list_codes(l);
    if (store.size() == 0) continue;
    QuantizedQuery qq;
    ASSERT_TRUE(PrepareQuery(index.encoder(), query.data(),
                             index.centroids().Row(l), &qrng, &qq)
                    .ok());
    std::vector<float> est(store.size()), lb(store.size());
    EstimateAll(qq, store, 1.9f, est.data(), lb.data());
    for (std::size_t i = 0; i < store.size(); ++i) {
      const DistanceEstimate single = EstimateDistance(qq, store.View(i), 1.9f);
      ASSERT_EQ(est[i], single.dist_sq) << "list " << l << " code " << i;
      ASSERT_EQ(lb[i], single.lower_bound_sq) << "list " << l << " code " << i;
    }
  }
}

}  // namespace
}  // namespace rabitq
