// Property tests for the RaBitQ estimator -- the heart of the paper:
//   * unbiasedness of <x-bar,q-bar>/<o-bar,o> as an estimator of <o,q>
//     (Theorem 3.2),
//   * O(1/sqrt(B)) error decay with code length,
//   * error-bound coverage >= the paper's confidence at eps0 = 1.9
//     (Eq. 14/16, Section 5.2.4),
//   * single-code bitwise path == batch fast-scan path bit-for-bit,
//   * the biased <o-bar,q> ablation estimator really is biased (~0.8 slope).

#include <gtest/gtest.h>

#include <cmath>

#include "core/estimator.h"
#include "core/query.h"
#include "core/rabitq.h"
#include "linalg/vector_ops.h"
#include "util/prng.h"

namespace rabitq {
namespace {

std::vector<float> RandomVec(std::size_t dim, Rng* rng, float scale = 1.0f) {
  std::vector<float> v(dim);
  for (auto& x : v) x = static_cast<float>(rng->Gaussian()) * scale;
  return v;
}

struct Workload {
  RabitqEncoder encoder;
  RabitqCodeStore store;
  Matrix data;
  Matrix queries;
  std::vector<float> centroid;
};

void BuildWorkload(std::size_t dim, std::size_t n, std::size_t n_queries,
                   std::size_t total_bits, std::uint64_t seed, Workload* w) {
  Rng rng(seed);
  RabitqConfig config;
  config.total_bits = total_bits;
  config.seed = seed * 7 + 1;
  ASSERT_TRUE(w->encoder.Init(dim, config).ok());
  w->store.Init(w->encoder.total_bits());
  w->data.Reset(n, dim);
  w->queries.Reset(n_queries, dim);
  w->centroid = RandomVec(dim, &rng, 0.5f);
  for (std::size_t i = 0; i < n; ++i) {
    const auto v = RandomVec(dim, &rng);
    std::copy_n(v.data(), dim, w->data.Row(i));
    ASSERT_TRUE(w->encoder
                    .EncodeAppend(w->data.Row(i), w->centroid.data(), &w->store)
                    .ok());
  }
  w->store.Finalize();
  for (std::size_t q = 0; q < n_queries; ++q) {
    const auto v = RandomVec(dim, &rng);
    std::copy_n(v.data(), dim, w->queries.Row(q));
  }
}

TEST(EstimatorTest, SingleAndBatchPathsAgreeExactly) {
  Workload w;
  BuildWorkload(100, 200, 4, 128, 11, &w);
  Rng rng(99);
  for (std::size_t q = 0; q < w.queries.rows(); ++q) {
    QuantizedQuery qq;
    ASSERT_TRUE(PrepareQuery(w.encoder, w.queries.Row(q), w.centroid.data(),
                             &rng, &qq)
                    .ok());
    ASSERT_TRUE(qq.has_exact_luts);
    std::vector<float> batch_est(w.store.size());
    std::vector<float> batch_lb(w.store.size());
    EstimateAll(qq, w.store, 1.9f, batch_est.data(), batch_lb.data());
    for (std::size_t i = 0; i < w.store.size(); ++i) {
      const DistanceEstimate single =
          EstimateDistance(qq, w.store.View(i), 1.9f);
      // Same integer S and identical float assembly: bitwise equality.
      ASSERT_EQ(batch_est[i], single.dist_sq) << "code " << i;
      ASSERT_EQ(batch_lb[i], single.lower_bound_sq) << "code " << i;
    }
  }
}

TEST(EstimatorTest, EstimatesTrackTrueDistances) {
  Workload w;
  BuildWorkload(128, 300, 8, 128, 13, &w);
  Rng rng(5);
  double total_rel_err = 0.0;
  std::size_t count = 0;
  for (std::size_t q = 0; q < w.queries.rows(); ++q) {
    QuantizedQuery qq;
    ASSERT_TRUE(PrepareQuery(w.encoder, w.queries.Row(q), w.centroid.data(),
                             &rng, &qq)
                    .ok());
    for (std::size_t i = 0; i < w.store.size(); ++i) {
      const DistanceEstimate est = EstimateDistance(qq, w.store.View(i), 1.9f);
      const float truth =
          L2SqrDistance(w.queries.Row(q), w.data.Row(i), w.data.cols());
      total_rel_err += std::fabs(est.dist_sq - truth) / truth;
      ++count;
    }
  }
  // D-bit codes at D=128: the paper reports single-digit average relative
  // error on distances; 15% is a conservative regression threshold.
  EXPECT_LT(total_rel_err / count, 0.15);
}

TEST(EstimatorTest, InnerProductEstimatorIsUnbiased) {
  // Fix o and q; re-sample the rotation many times (fresh encoder seed) and
  // average the estimate of <o,q>. Must converge to the true inner product
  // (Theorem 3.2). Uses B_q = 8 to make query-quantization noise tiny; that
  // noise is itself unbiased (Eq. 18) so it does not shift the mean.
  const std::size_t dim = 64;
  Rng data_rng(17);
  auto o = RandomVec(dim, &data_rng);
  auto q = RandomVec(dim, &data_rng);
  NormalizeInPlace(o.data(), dim);
  NormalizeInPlace(q.data(), dim);
  const float true_ip = Dot(o.data(), q.data(), dim);

  Rng round_rng(31);
  const int trials = 300;
  double mean_est = 0.0;
  for (int t = 0; t < trials; ++t) {
    RabitqEncoder enc;
    RabitqConfig config;
    config.seed = 1000 + t;
    config.query_bits = 8;
    ASSERT_TRUE(enc.Init(dim, config).ok());
    RabitqCodeStore store(enc.total_bits());
    ASSERT_TRUE(enc.EncodeAppend(o.data(), nullptr, &store).ok());
    QuantizedQuery qq;
    ASSERT_TRUE(PrepareQuery(enc, q.data(), nullptr, &round_rng, &qq).ok());
    mean_est += EstimateDistance(qq, store.View(0), 0.0f).ip;
  }
  mean_est /= trials;
  // Std dev of one estimate is ~1/sqrt(B)~0.11; 300 trials -> SE ~0.007.
  EXPECT_NEAR(mean_est, true_ip, 0.025);
}

TEST(EstimatorTest, BiasedEstimatorUnderestimatesByFactorOO) {
  // The ablation estimator <o-bar, q> concentrates near 0.8 * <o,q>
  // (Appendix F.2, Fig. 11) -- NOT near <o,q>.
  // Construct q = 0.8 o + 0.6 e (e orthonormal to o) so <o,q> = 0.8 exactly
  // and the bias (factor ~0.8) is far larger than Monte-Carlo noise.
  const std::size_t dim = 64;
  Rng data_rng(19);
  auto o = RandomVec(dim, &data_rng);
  NormalizeInPlace(o.data(), dim);
  auto e = RandomVec(dim, &data_rng);
  Axpy(-Dot(e.data(), o.data(), dim), o.data(), e.data(), dim);
  NormalizeInPlace(e.data(), dim);
  std::vector<float> q(dim);
  for (std::size_t j = 0; j < dim; ++j) q[j] = 0.8f * o[j] + 0.6f * e[j];
  const float true_ip = Dot(o.data(), q.data(), dim);
  ASSERT_NEAR(true_ip, 0.8f, 1e-4f);

  Rng round_rng(37);
  const int trials = 300;
  double mean_biased = 0.0;
  for (int t = 0; t < trials; ++t) {
    RabitqEncoder enc;
    RabitqConfig config;
    config.seed = 5000 + t;
    config.query_bits = 8;
    ASSERT_TRUE(enc.Init(dim, config).ok());
    RabitqCodeStore store(enc.total_bits());
    ASSERT_TRUE(enc.EncodeAppend(o.data(), nullptr, &store).ok());
    QuantizedQuery qq;
    ASSERT_TRUE(PrepareQuery(enc, q.data(), nullptr, &round_rng, &qq).ok());
    mean_biased += EstimateDistanceBiased(qq, store.View(0)).ip;
  }
  mean_biased /= trials;
  EXPECT_NEAR(mean_biased, 0.8 * true_ip, 0.03);
  EXPECT_GT(std::fabs(mean_biased - true_ip), 0.1);
}

class ErrorBoundParamTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ErrorBoundParamTest, OneSidedCoverageMatchesTheory) {
  // Eq. 14's failure event |X1| > eps0/sqrt(1-<o,q>^2) has one-sided
  // Gaussian-tail probability <= Phi(-1.9) ~ 2.9% for generic pairs, and
  // vanishes as eps0 grows. (The near-perfect *recall* of Section 5.2.4
  // additionally benefits from near neighbors' sqrt(1-<o,q>^2) shrink and
  // the k-th-best threshold; the raw per-pair coverage is what is testable
  // distribution-free.)
  const std::size_t total_bits = GetParam();
  Workload w;
  BuildWorkload(100, 500, 4, total_bits, total_bits, &w);
  Rng rng(7);
  auto coverage = [&](float eps0) {
    std::size_t covered = 0, total = 0;
    Rng qrng(7);
    for (std::size_t q = 0; q < w.queries.rows(); ++q) {
      QuantizedQuery qq;
      EXPECT_TRUE(PrepareQuery(w.encoder, w.queries.Row(q), w.centroid.data(),
                               &qrng, &qq)
                      .ok());
      for (std::size_t i = 0; i < w.store.size(); ++i) {
        const DistanceEstimate est =
            EstimateDistance(qq, w.store.View(i), eps0);
        const float truth =
            L2SqrDistance(w.queries.Row(q), w.data.Row(i), w.data.cols());
        if (est.lower_bound_sq <= truth) ++covered;
        ++total;
      }
    }
    return static_cast<double>(covered) / total;
  };
  const double cov_19 = coverage(1.9f);
  const double cov_30 = coverage(3.0f);
  EXPECT_GE(cov_19, 0.95);  // theory: >= 1 - 2.9% (minus B_q=4 noise)
  EXPECT_GE(cov_30, 0.995);
  EXPECT_GE(cov_30, cov_19);
}

TEST_P(ErrorBoundParamTest, NearNeighborsAlmostNeverPruned) {
  // For close pairs, sqrt(1 - <o,q>^2) shrinks the true error while the
  // bound stays full-width: the vectors that matter for recall are covered
  // with probability far beyond the generic 97%. Plant near-duplicates and
  // verify none of them has a lower bound above its true distance.
  const std::size_t total_bits = GetParam();
  const std::size_t dim = 100;
  RabitqConfig config;
  config.total_bits = total_bits;
  RabitqEncoder enc;
  ASSERT_TRUE(enc.Init(dim, config).ok());
  RabitqCodeStore store(enc.total_bits());

  Rng rng(total_bits + 3);
  const auto centroid = RandomVec(dim, &rng, 0.5f);
  const auto query = RandomVec(dim, &rng);
  Matrix neighbors(400, dim);
  for (std::size_t i = 0; i < neighbors.rows(); ++i) {
    for (std::size_t j = 0; j < dim; ++j) {
      // Points within ~5% of the query's scale.
      neighbors.At(i, j) =
          query[j] + 0.05f * static_cast<float>(rng.Gaussian());
    }
    ASSERT_TRUE(
        enc.EncodeAppend(neighbors.Row(i), centroid.data(), &store).ok());
  }
  QuantizedQuery qq;
  ASSERT_TRUE(PrepareQuery(enc, query.data(), centroid.data(), &rng, &qq).ok());
  std::size_t failures = 0;
  for (std::size_t i = 0; i < store.size(); ++i) {
    const DistanceEstimate est = EstimateDistance(qq, store.View(i), 1.9f);
    const float truth =
        L2SqrDistance(query.data(), neighbors.Row(i), dim);
    if (est.lower_bound_sq > truth) ++failures;
  }
  EXPECT_LE(failures, 2u) << "near neighbors must essentially never fail";
}

INSTANTIATE_TEST_SUITE_P(Bits, ErrorBoundParamTest,
                         ::testing::Values(128, 256, 512));

TEST(EstimatorTest, ErrorShrinksWithCodeLength) {
  // Thm 3.2: |error| = O(1/sqrt(B)). Quadrupling B should roughly halve the
  // average inner-product error; require at least a 1.5x improvement.
  const std::size_t dim = 120;
  auto mean_abs_ip_error = [&](std::size_t total_bits) {
    Workload w;
    BuildWorkload(dim, 400, 4, total_bits, 91, &w);
    Rng rng(3);
    double err = 0.0;
    std::size_t count = 0;
    for (std::size_t q = 0; q < w.queries.rows(); ++q) {
      QuantizedQuery qq;
      EXPECT_TRUE(PrepareQuery(w.encoder, w.queries.Row(q), w.centroid.data(),
                               &rng, &qq)
                      .ok());
      std::vector<float> query_res(dim);
      Subtract(w.queries.Row(q), w.centroid.data(), query_res.data(), dim);
      NormalizeInPlace(query_res.data(), dim);
      for (std::size_t i = 0; i < w.store.size(); ++i) {
        std::vector<float> data_res(dim);
        Subtract(w.data.Row(i), w.centroid.data(), data_res.data(), dim);
        NormalizeInPlace(data_res.data(), dim);
        const float true_ip = Dot(query_res.data(), data_res.data(), dim);
        const DistanceEstimate est =
            EstimateDistance(qq, w.store.View(i), 0.0f);
        err += std::fabs(est.ip - true_ip);
        ++count;
      }
    }
    return err / count;
  };
  const double err_128 = mean_abs_ip_error(128);
  const double err_512 = mean_abs_ip_error(512);
  EXPECT_LT(err_512, err_128 / 1.5);
}

TEST(EstimatorTest, IpErrorBoundFormula) {
  // Hand-check Eq. 16's half-width.
  const float o_o = 0.8f;
  const float eps0 = 1.9f;
  const std::size_t b = 128;
  const float expected =
      std::sqrt((1.0f - 0.64f) / 0.64f) * 1.9f / std::sqrt(127.0f);
  EXPECT_NEAR(IpErrorBound(o_o, eps0, b), expected, 1e-6f);
  // Larger codes tighten the bound; weaker concentration widens it.
  EXPECT_LT(IpErrorBound(0.8f, 1.9f, 512), IpErrorBound(0.8f, 1.9f, 128));
  EXPECT_GT(IpErrorBound(0.5f, 1.9f, 128), IpErrorBound(0.9f, 1.9f, 128));
}

TEST(EstimatorTest, DegenerateCodesShortCircuit) {
  RabitqEncoder enc;
  ASSERT_TRUE(enc.Init(32, RabitqConfig{}).ok());
  RabitqCodeStore store(enc.total_bits());
  std::vector<float> centroid(32, 1.0f);
  // Data vector == centroid.
  ASSERT_TRUE(enc.EncodeAppend(centroid.data(), centroid.data(), &store).ok());
  Rng rng(1);
  std::vector<float> query(32, 3.0f);
  QuantizedQuery qq;
  ASSERT_TRUE(PrepareQuery(enc, query.data(), centroid.data(), &rng, &qq).ok());
  const DistanceEstimate est = EstimateDistance(qq, store.View(0), 1.9f);
  // Distance is exactly ||query - centroid||^2 = 32 * 4.
  EXPECT_FLOAT_EQ(est.dist_sq, 128.0f);
  EXPECT_FLOAT_EQ(est.lower_bound_sq, 128.0f);

  // Query == centroid: distances are exactly dist_to_centroid^2.
  RabitqCodeStore store2(enc.total_bits());
  std::vector<float> far_point(32, 2.0f);
  ASSERT_TRUE(enc.EncodeAppend(far_point.data(), centroid.data(), &store2).ok());
  QuantizedQuery qq2;
  ASSERT_TRUE(
      PrepareQuery(enc, centroid.data(), centroid.data(), &rng, &qq2).ok());
  const DistanceEstimate est2 = EstimateDistance(qq2, store2.View(0), 1.9f);
  EXPECT_FLOAT_EQ(est2.dist_sq, 32.0f);
}

TEST(EstimatorTest, LowerBoundNeverExceedsEstimate) {
  Workload w;
  BuildWorkload(64, 100, 2, 64, 23, &w);
  Rng rng(2);
  QuantizedQuery qq;
  ASSERT_TRUE(
      PrepareQuery(w.encoder, w.queries.Row(0), w.centroid.data(), &rng, &qq)
          .ok());
  for (std::size_t i = 0; i < w.store.size(); ++i) {
    const DistanceEstimate est = EstimateDistance(qq, w.store.View(i), 1.9f);
    EXPECT_LE(est.lower_bound_sq, est.dist_sq);
  }
}

}  // namespace
}  // namespace rabitq
