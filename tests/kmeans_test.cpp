// Tests for the KMeans substrate: objective improvement, assignment
// correctness, empty-cluster repair, subsampled training, determinism.

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "cluster/kmeans.h"
#include "linalg/vector_ops.h"
#include "util/prng.h"

namespace rabitq {
namespace {

// Three well-separated 2-D blobs.
Matrix ThreeBlobs(std::size_t per_blob, Rng* rng) {
  const float centers[3][2] = {{0, 0}, {100, 0}, {0, 100}};
  Matrix data(3 * per_blob, 2);
  for (std::size_t i = 0; i < data.rows(); ++i) {
    const auto c = centers[i % 3];
    data.At(i, 0) = c[0] + static_cast<float>(rng->Gaussian());
    data.At(i, 1) = c[1] + static_cast<float>(rng->Gaussian());
  }
  return data;
}

TEST(KMeansTest, RecoversWellSeparatedBlobs) {
  Rng rng(1);
  const Matrix data = ThreeBlobs(200, &rng);
  KMeansConfig config;
  config.num_clusters = 3;
  config.seed = 5;
  KMeansResult result;
  ASSERT_TRUE(RunKMeans(data, config, &result).ok());
  ASSERT_EQ(result.centroids.rows(), 3u);
  // Each true blob center must be within a few units of some centroid.
  const float centers[3][2] = {{0, 0}, {100, 0}, {0, 100}};
  for (const auto& c : centers) {
    float best = 1e30f;
    for (std::size_t k = 0; k < 3; ++k) {
      best = std::min(best, L2SqrDistance(c, result.centroids.Row(k), 2));
    }
    EXPECT_LT(best, 4.0f);
  }
  // Points in the same blob share an assignment.
  for (std::size_t i = 3; i < data.rows(); ++i) {
    EXPECT_EQ(result.assignments[i], result.assignments[i % 3]);
  }
}

TEST(KMeansTest, AssignmentsMatchNearestCentroid) {
  Rng rng(2);
  const Matrix data = ThreeBlobs(50, &rng);
  KMeansConfig config;
  config.num_clusters = 5;
  KMeansResult result;
  ASSERT_TRUE(RunKMeans(data, config, &result).ok());
  for (std::size_t i = 0; i < data.rows(); ++i) {
    EXPECT_EQ(result.assignments[i],
              NearestCentroid(data.Row(i), result.centroids));
  }
}

TEST(KMeansTest, ObjectiveDecreasesVsSingleIteration) {
  Rng rng(3);
  Matrix data(500, 8);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data.data()[i] = static_cast<float>(rng.Gaussian());
  }
  KMeansConfig one_iter;
  one_iter.num_clusters = 16;
  one_iter.max_iterations = 1;
  one_iter.seed = 9;
  KMeansConfig many_iters = one_iter;
  many_iters.max_iterations = 30;
  KMeansResult short_run, long_run;
  ASSERT_TRUE(RunKMeans(data, one_iter, &short_run).ok());
  ASSERT_TRUE(RunKMeans(data, many_iters, &long_run).ok());
  EXPECT_LE(long_run.final_objective, short_run.final_objective + 1e-9);
}

TEST(KMeansTest, MoreClustersThanPointsDuplicates) {
  Matrix data(3, 2);
  data.At(0, 0) = 1.0f;
  data.At(1, 0) = 2.0f;
  data.At(2, 0) = 3.0f;
  KMeansConfig config;
  config.num_clusters = 8;
  KMeansResult result;
  ASSERT_TRUE(RunKMeans(data, config, &result).ok());
  EXPECT_EQ(result.centroids.rows(), 8u);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_LT(result.assignments[i], 8u);
}

TEST(KMeansTest, DeterministicForFixedSeed) {
  Rng rng(4);
  const Matrix data = ThreeBlobs(100, &rng);
  KMeansConfig config;
  config.num_clusters = 4;
  config.seed = 77;
  KMeansResult a, b;
  ASSERT_TRUE(RunKMeans(data, config, &a).ok());
  ASSERT_TRUE(RunKMeans(data, config, &b).ok());
  EXPECT_EQ(a.assignments, b.assignments);
  EXPECT_LT(MaxAbsDiff(a.centroids, b.centroids), 1e-12f);
}

TEST(KMeansTest, SubsampledTrainingStillAssignsEveryPoint) {
  Rng rng(5);
  const Matrix data = ThreeBlobs(400, &rng);
  KMeansConfig config;
  config.num_clusters = 3;
  config.max_training_points = 100;
  KMeansResult result;
  ASSERT_TRUE(RunKMeans(data, config, &result).ok());
  EXPECT_EQ(result.assignments.size(), data.rows());
  std::set<std::uint32_t> used(result.assignments.begin(),
                               result.assignments.end());
  EXPECT_EQ(used.size(), 3u);
}

TEST(KMeansTest, RejectsBadArguments) {
  Matrix data(4, 2);
  KMeansConfig config;
  config.num_clusters = 0;
  KMeansResult result;
  EXPECT_FALSE(RunKMeans(data, config, &result).ok());
  config.num_clusters = 2;
  EXPECT_FALSE(RunKMeans(Matrix(), config, &result).ok());
  EXPECT_FALSE(RunKMeans(data, config, nullptr).ok());
}

TEST(KMeansTest, NearestCentroidReturnsDistance) {
  Matrix centroids(2, 2);
  centroids.At(0, 0) = 0.0f;
  centroids.At(1, 0) = 10.0f;
  const float query[2] = {9.0f, 0.0f};
  float dist = -1.0f;
  EXPECT_EQ(NearestCentroid(query, centroids, &dist), 1u);
  EXPECT_FLOAT_EQ(dist, 1.0f);
}

}  // namespace
}  // namespace rabitq
