// The unified SearchRequest/SearchResponse API and its compatibility shims:
//   * old raw-pointer overloads (index / sharded / engine) are bit-identical
//     to the request API at equal seeds -- they ARE the request API now
//     (thin shims in search_compat.h), and these tests pin that;
//   * seed semantics: explicit options.seed is used verbatim at every
//     layer; unset seeds fall back to the documented defaults;
//   * the Metric enum is validated at build (and survives save/load);
//   * request-level error paths report through SearchResponse.status.
//
// This TU deliberately calls the deprecated API (RABITQ_SUPPRESS_DEPRECATED
// is set for test targets) -- it is the compat coverage.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "engine/search_engine.h"
#include "index/ivf.h"
#include "index/sharded.h"
#include "util/prng.h"

namespace rabitq {
namespace {

Matrix ClusteredData(std::size_t n, std::size_t dim, std::size_t clusters,
                     std::uint64_t seed) {
  Rng rng(seed);
  Matrix centers(clusters, dim);
  for (std::size_t i = 0; i < centers.size(); ++i) {
    centers.data()[i] = static_cast<float>(rng.Gaussian()) * 8.0f;
  }
  Matrix data(n, dim);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t c = rng.UniformInt(clusters);
    for (std::size_t j = 0; j < dim; ++j) {
      data.At(i, j) = centers.At(c, j) + static_cast<float>(rng.Gaussian());
    }
  }
  return data;
}

class SearchApiTest : public ::testing::Test {
 protected:
  static constexpr std::size_t kN = 2000;
  static constexpr std::size_t kDim = 32;

  void SetUp() override {
    data_ = ClusteredData(kN, kDim, 12, 61);
    IvfConfig ivf;
    ivf.num_lists = 16;
    ASSERT_TRUE(index_.Build(data_, ivf, RabitqConfig{}).ok());
    queries_ = ClusteredData(10, kDim, 12, 62);
  }

  SearchOptions Options(std::size_t nprobe = 8) const {
    SearchOptions options;
    options.k = 10;
    options.nprobe = nprobe;
    return options;
  }

  Matrix data_;
  Matrix queries_;
  IvfRabitqIndex index_;
};

TEST_F(SearchApiTest, SeededOverloadMatchesRequestApiBitIdentically) {
  for (const bool batch_estimator : {true, false}) {
    for (std::size_t q = 0; q < queries_.rows(); ++q) {
      const std::uint64_t seed = 1234 + q;
      SearchOptions options = Options();
      options.use_batch_estimator = batch_estimator;

      std::vector<Neighbor> old_result;
      IvfSearchStats old_stats;
      ASSERT_TRUE(index_
                      .Search(queries_.Row(q), options, seed, &old_result,
                              &old_stats)
                      .ok());

      SearchRequest request{queries_.Row(q), options};
      request.options.seed = seed;
      const SearchResponse response = index_.Search(request);
      ASSERT_TRUE(response.ok());
      EXPECT_EQ(response.neighbors, old_result);
      EXPECT_EQ(response.stats.codes_estimated, old_stats.codes_estimated);
      EXPECT_EQ(response.stats.candidates_reranked,
                old_stats.candidates_reranked);
      EXPECT_EQ(response.stats.lists_probed, old_stats.lists_probed);
      EXPECT_EQ(response.stats.codes_filtered, old_stats.codes_filtered);
    }
  }
}

TEST_F(SearchApiTest, RngOverloadMatchesCallerDrawnSeed) {
  for (std::size_t q = 0; q < queries_.rows(); ++q) {
    Rng rng(99 + q);
    const std::uint64_t drawn = Rng(99 + q).NextU64();

    std::vector<Neighbor> old_result;
    ASSERT_TRUE(
        index_.Search(queries_.Row(q), Options(), &rng, &old_result).ok());

    SearchRequest request{queries_.Row(q), Options()};
    request.options.seed = drawn;
    EXPECT_EQ(index_.Search(request).neighbors, old_result);
  }
}

TEST_F(SearchApiTest, UnsetSeedDefaultsToZero) {
  SearchRequest unseeded{queries_.Row(0), Options()};
  SearchRequest zero_seeded = unseeded;
  zero_seeded.options.seed = 0;
  EXPECT_EQ(index_.Search(unseeded).neighbors,
            index_.Search(zero_seeded).neighbors);
}

TEST_F(SearchApiTest, RequestErrorsReportThroughResponseStatus) {
  SearchRequest request{queries_.Row(0), Options()};
  request.options.k = 0;
  const SearchResponse response = index_.Search(request);
  EXPECT_FALSE(response.ok());
  EXPECT_EQ(response.status.code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(response.neighbors.empty());
}

TEST_F(SearchApiTest, MetricValidatedAtBuild) {
  // Every declared metric builds; a value outside the enum fails closed.
  for (const Metric metric :
       {Metric::kL2, Metric::kInnerProduct, Metric::kCosine}) {
    IvfConfig ivf;
    ivf.num_lists = 16;
    ivf.metric = metric;
    IvfRabitqIndex built;
    ASSERT_TRUE(built.Build(data_, ivf, RabitqConfig{}).ok())
        << MetricName(metric);
    EXPECT_EQ(built.metric(), metric);
  }
  EXPECT_EQ(index_.metric(), Metric::kL2);

  IvfConfig bogus;
  bogus.num_lists = 16;
  bogus.metric = static_cast<Metric>(kMaxMetricValue + 1);
  IvfRabitqIndex rejected;
  EXPECT_EQ(rejected.Build(data_, bogus, RabitqConfig{}).code(),
            StatusCode::kInvalidArgument);

  ShardedConfig sharded;
  sharded.num_shards = 2;
  sharded.ivf.num_lists = 8;
  sharded.ivf.metric = Metric::kInnerProduct;
  ShardedIndex built;
  ASSERT_TRUE(built.Build(data_, sharded).ok());
  EXPECT_EQ(built.metric(), Metric::kInnerProduct);
  sharded.ivf.metric = static_cast<Metric>(kMaxMetricValue + 1);
  ShardedIndex sharded_rejected;
  EXPECT_EQ(sharded_rejected.Build(data_, sharded).code(),
            StatusCode::kInvalidArgument);
}

TEST_F(SearchApiTest, MetricSurvivesSnapshotRoundTrip) {
  const std::string path = ::testing::TempDir() + "/search_api_metric.rbq";
  ASSERT_TRUE(index_.Save(path).ok());
  IvfRabitqIndex loaded;
  ASSERT_TRUE(loaded.Load(path).ok());
  EXPECT_EQ(loaded.metric(), Metric::kL2);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------

class ShardedApiTest : public ::testing::Test {
 protected:
  void SetUp() override {
    data_ = ClusteredData(1500, 32, 10, 71);
    queries_ = ClusteredData(6, 32, 10, 72);
    ShardedConfig config;
    config.num_shards = 3;
    config.clustering = ShardClustering::kShared;
    config.ivf.num_lists = 12;
    ASSERT_TRUE(index_.Build(data_, config).ok());
  }

  Matrix data_;
  Matrix queries_;
  ShardedIndex index_;
};

TEST_F(ShardedApiTest, SeededOverloadMatchesRequestApi) {
  SearchOptions options;
  options.k = 10;
  options.nprobe = 8;
  for (std::size_t q = 0; q < queries_.rows(); ++q) {
    const std::uint64_t seed = 808 + q;
    std::vector<Neighbor> old_result;
    IvfSearchStats old_stats;
    ASSERT_TRUE(index_
                    .Search(queries_.Row(q), options, seed, &old_result,
                            &old_stats)
                    .ok());
    SearchRequest request{queries_.Row(q), options};
    request.options.seed = seed;
    const SearchResponse response = index_.Search(request);
    ASSERT_TRUE(response.ok());
    EXPECT_EQ(response.neighbors, old_result);
    EXPECT_EQ(response.stats.lists_probed, old_stats.lists_probed);
  }
}

// ---------------------------------------------------------------------------

class EngineApiTest : public ::testing::Test {
 protected:
  static constexpr std::size_t kNumQueries = 12;

  void SetUp() override {
    data_ = ClusteredData(1800, 32, 10, 81);
    queries_ = ClusteredData(kNumQueries, 32, 10, 82);
    IvfConfig ivf;
    ivf.num_lists = 16;
    IvfRabitqIndex index;
    ASSERT_TRUE(index.Build(data_, ivf, RabitqConfig{}).ok());
    engine_ = std::make_unique<SearchEngine>(std::move(index), EngineConfig{});
    options_.k = 10;
    options_.nprobe = 8;
  }

  Matrix data_;
  Matrix queries_;
  SearchOptions options_;
  std::unique_ptr<SearchEngine> engine_;
};

TEST_F(EngineApiTest, RawPointerBatchShimMatchesRequestCore) {
  const std::uint64_t seed_base = 20240607;
  std::vector<std::vector<Neighbor>> old_results;
  IvfSearchStats old_agg;
  ASSERT_TRUE(engine_
                  ->SearchBatch(queries_.Row(0), kNumQueries, options_,
                                seed_base, &old_results, &old_agg)
                  .ok());

  std::vector<SearchRequest> requests(kNumQueries);
  for (std::size_t i = 0; i < kNumQueries; ++i) {
    requests[i].query = queries_.Row(i);
    requests[i].options = options_;
    requests[i].options.seed = SearchEngine::QuerySeed(seed_base, i);
  }
  std::vector<SearchResponse> responses;
  ASSERT_TRUE(
      engine_->SearchBatch(requests.data(), kNumQueries, &responses).ok());

  IvfSearchStats new_agg;
  for (std::size_t i = 0; i < kNumQueries; ++i) {
    ASSERT_TRUE(responses[i].ok());
    EXPECT_EQ(responses[i].neighbors, old_results[i]) << "query " << i;
    new_agg.codes_estimated += responses[i].stats.codes_estimated;
    new_agg.candidates_reranked += responses[i].stats.candidates_reranked;
    new_agg.lists_probed += responses[i].stats.lists_probed;
    new_agg.codes_filtered += responses[i].stats.codes_filtered;
  }
  EXPECT_EQ(new_agg.codes_estimated, old_agg.codes_estimated);
  EXPECT_EQ(new_agg.candidates_reranked, old_agg.candidates_reranked);
  EXPECT_EQ(new_agg.lists_probed, old_agg.lists_probed);
  EXPECT_EQ(new_agg.codes_filtered, old_agg.codes_filtered);
}

TEST_F(EngineApiTest, SingleSearchMatchesSeededBatchEntry) {
  SearchRequest request{queries_.Row(0), options_};
  request.options.seed = 4711;
  const SearchResponse single = engine_->Search(request);
  ASSERT_TRUE(single.ok());
  std::vector<SearchResponse> responses;
  ASSERT_TRUE(engine_->SearchBatch(&request, 1, &responses).ok());
  EXPECT_EQ(single.neighbors, responses[0].neighbors);
}

TEST_F(EngineApiTest, AsyncShimsMatchRequestSubmission) {
  const std::uint64_t seed = 999;
  SearchRequest request{queries_.Row(1), options_};
  request.options.seed = seed;
  SearchResponse via_request = engine_->SubmitAsync(request).get();
  SearchResponse via_shim =
      engine_->SubmitAsync(queries_.Row(1), options_, seed).get();
  ASSERT_TRUE(via_request.ok() && via_shim.ok());
  EXPECT_EQ(via_request.neighbors, via_shim.neighbors);

  // EngineResult remains an alias of SearchResponse for legacy callers.
  EngineResult legacy = engine_->SubmitAsync(queries_.Row(1), options_, seed)
                            .get();
  EXPECT_EQ(legacy.neighbors, via_request.neighbors);
}

TEST_F(EngineApiTest, NullQueryFailsClosed) {
  SearchRequest request{nullptr, options_};
  std::vector<SearchResponse> responses;
  EXPECT_EQ(engine_->SearchBatch(&request, 1, &responses).code(),
            StatusCode::kInvalidArgument);
  ASSERT_EQ(responses.size(), 1u);
  // The per-response contract: the failed request reports through its OWN
  // status, not just the batch-level return.
  EXPECT_EQ(responses[0].status.code(), StatusCode::kInvalidArgument);
  EXPECT_FALSE(engine_->Search(request).ok());
  SearchResponse async = engine_->SubmitAsync(request).get();
  EXPECT_EQ(async.status.code(), StatusCode::kInvalidArgument);

  // And at the index/sharded layers of the same unified API.
  IvfConfig ivf;
  ivf.num_lists = 8;
  IvfRabitqIndex index;
  ASSERT_TRUE(index.Build(data_, ivf, RabitqConfig{}).ok());
  EXPECT_EQ(index.Search(SearchRequest{}).status.code(),
            StatusCode::kInvalidArgument);
}

TEST_F(EngineApiTest, MixedNullAndValidBatchExecutesTheValidRequests) {
  SearchRequest valid{queries_.Row(0), options_};
  valid.options.seed = 31415;
  const SearchResponse expected = engine_->Search(valid);
  ASSERT_TRUE(expected.ok());

  std::vector<SearchRequest> requests = {SearchRequest{nullptr, options_},
                                         valid,
                                         SearchRequest{nullptr, options_}};
  std::vector<SearchResponse> responses;
  EXPECT_EQ(engine_->SearchBatch(requests.data(), requests.size(), &responses)
                .code(),
            StatusCode::kInvalidArgument);
  ASSERT_EQ(responses.size(), 3u);
  EXPECT_FALSE(responses[0].ok());
  EXPECT_FALSE(responses[2].ok());
  ASSERT_TRUE(responses[1].ok());
  EXPECT_EQ(responses[1].neighbors, expected.neighbors);
}

TEST_F(EngineApiTest, EmptyBatchIsOkThroughCoreAndShim) {
  std::vector<SearchResponse> responses;
  EXPECT_TRUE(engine_->SearchBatch(nullptr, 0, &responses).ok());
  EXPECT_TRUE(responses.empty());
  // The deprecated raw-pointer shim forwards an empty vector's data()
  // (possibly nullptr); zero queries must stay a successful no-op.
  std::vector<std::vector<Neighbor>> results;
  EXPECT_TRUE(
      engine_->SearchBatch(queries_.Row(0), 0, options_, &results).ok());
  EXPECT_TRUE(results.empty());
}

TEST_F(EngineApiTest, ExplicitSeedSubmissionDoesNotConsumeAutoSeedTicket) {
  // Tickets drive the auto-seed stream; an explicitly-seeded submission in
  // between must not shift it. Two unseeded submissions around an explicit
  // one must therefore match tickets 0 and 1 of a fresh identical engine.
  IvfConfig ivf;
  ivf.num_lists = 16;
  IvfRabitqIndex index;
  ASSERT_TRUE(index.Build(data_, ivf, RabitqConfig{}).ok());
  SearchEngine fresh(std::move(index), EngineConfig{});

  SearchRequest unseeded{queries_.Row(2), options_};
  SearchRequest seeded{queries_.Row(3), options_};
  seeded.options.seed = 777;

  SearchResponse first = engine_->SubmitAsync(unseeded).get();
  engine_->SubmitAsync(seeded).get();
  SearchResponse third = engine_->SubmitAsync(unseeded).get();

  SearchResponse want_first = fresh.SubmitAsync(unseeded).get();
  SearchResponse want_third = fresh.SubmitAsync(unseeded).get();
  ASSERT_TRUE(first.ok() && third.ok());
  EXPECT_EQ(first.neighbors, want_first.neighbors);
  EXPECT_EQ(third.neighbors, want_third.neighbors);
}

}  // namespace
}  // namespace rabitq
