// Tests for the fast-scan kernel: packing layout, AVX2 vs scalar
// bit-equality, overflow safety at large segment counts, LUT requantization.

#include <gtest/gtest.h>

#include <cstring>
#include <numeric>

#include "quant/fastscan.h"
#include "util/prng.h"

namespace rabitq {
namespace {

// Reference: direct per-vector accumulation from unpacked codes.
std::vector<std::uint32_t> DirectAccumulate(const std::uint8_t* codes,
                                            std::size_t n, std::size_t segments,
                                            const std::uint8_t* luts) {
  std::vector<std::uint32_t> out(n, 0);
  for (std::size_t v = 0; v < n; ++v) {
    for (std::size_t t = 0; t < segments; ++t) {
      out[v] += luts[t * 16 + codes[v * segments + t]];
    }
  }
  return out;
}

struct FastScanCase {
  std::size_t n;
  std::size_t segments;
};

class FastScanParamTest : public ::testing::TestWithParam<FastScanCase> {};

TEST_P(FastScanParamTest, KernelMatchesDirectAccumulation) {
  const auto [n, segments] = GetParam();
  Rng rng(n * 1000 + segments);
  std::vector<std::uint8_t> codes(n * segments);
  for (auto& c : codes) c = static_cast<std::uint8_t>(rng.UniformInt(16));
  AlignedVector<std::uint8_t> luts(segments * 16);
  for (auto& l : luts) l = static_cast<std::uint8_t>(rng.UniformInt(256));

  FastScanCodes packed;
  PackFastScanCodes(codes.data(), n, segments, &packed);
  EXPECT_EQ(packed.num_blocks, (n + 31) / 32);

  const auto expected = DirectAccumulate(codes.data(), n, segments, luts.data());
  std::uint32_t acc[kFastScanBlockSize];
  for (std::size_t b = 0; b < packed.num_blocks; ++b) {
    FastScanAccumulateBlock(packed.BlockPtr(b), segments, luts.data(), acc);
    const std::size_t begin = b * kFastScanBlockSize;
    const std::size_t end = std::min(begin + kFastScanBlockSize, n);
    for (std::size_t v = begin; v < end; ++v) {
      ASSERT_EQ(acc[v - begin], expected[v]) << "vector " << v;
    }
  }
}

TEST_P(FastScanParamTest, SimdMatchesScalarBitForBit) {
  const auto [n, segments] = GetParam();
  Rng rng(n * 31 + segments * 7);
  std::vector<std::uint8_t> codes(n * segments);
  for (auto& c : codes) c = static_cast<std::uint8_t>(rng.UniformInt(16));
  AlignedVector<std::uint8_t> luts(segments * 16);
  for (auto& l : luts) l = static_cast<std::uint8_t>(rng.UniformInt(256));
  FastScanCodes packed;
  PackFastScanCodes(codes.data(), n, segments, &packed);
  std::uint32_t simd[kFastScanBlockSize], ref[kFastScanBlockSize];
  for (std::size_t b = 0; b < packed.num_blocks; ++b) {
    FastScanAccumulateBlock(packed.BlockPtr(b), segments, luts.data(), simd);
    FastScanAccumulateBlockScalar(packed.BlockPtr(b), segments, luts.data(),
                                  ref);
    EXPECT_EQ(std::memcmp(simd, ref, sizeof(simd)), 0) << "block " << b;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, FastScanParamTest,
    ::testing::Values(FastScanCase{1, 4}, FastScanCase{31, 8},
                      FastScanCase{32, 16}, FastScanCase{33, 16},
                      FastScanCase{100, 32}, FastScanCase{64, 240},
                      FastScanCase{128, 256},
                      // > 128 segments crosses the u16 -> u32 spill boundary;
                      // 480 segments (GIST at M=D/2) with max-value LUTs
                      // would overflow u16 by 7x.
                      FastScanCase{96, 480}, FastScanCase{40, 513}));

// Exhaustive randomized cross-check: many random (n, segments) shapes --
// segment counts that are NOT multiples of 16 (odd, prime, off-by-one
// around the 16-lane boundaries) and vector counts around the 32-vector
// block edges -- must agree bit-for-bit between the SIMD kernel, the scalar
// reference, and direct per-vector accumulation. This is the padding-edge
// sweep: any mistake in tail-slot zero fill or partial-segment handling
// shows up as a mismatch on some shape.
TEST(FastScanTest, RandomShapesSimdScalarAndDirectAgreeBitForBit) {
  Rng rng(20240731);
  const std::size_t odd_segments[] = {1, 2, 3, 5, 7, 15, 17, 31, 33,
                                      47, 63, 65, 127, 129, 255, 257};
  const std::size_t edge_vectors[] = {1, 2, 31, 32, 33, 63, 64, 65, 95, 97};
  for (int trial = 0; trial < 60; ++trial) {
    std::size_t n, segments;
    if (trial < 16) {
      segments = odd_segments[trial];
      n = edge_vectors[trial % std::size(edge_vectors)];
    } else {
      segments = 1 + rng.UniformInt(300);
      n = 1 + rng.UniformInt(150);
    }
    std::vector<std::uint8_t> codes(n * segments);
    for (auto& c : codes) c = static_cast<std::uint8_t>(rng.UniformInt(16));
    AlignedVector<std::uint8_t> luts(segments * 16);
    for (auto& l : luts) l = static_cast<std::uint8_t>(rng.UniformInt(256));

    FastScanCodes packed;
    PackFastScanCodes(codes.data(), n, segments, &packed);
    ASSERT_EQ(packed.num_blocks, (n + 31) / 32)
        << "n=" << n << " segments=" << segments;
    const auto expected =
        DirectAccumulate(codes.data(), n, segments, luts.data());
    std::uint32_t simd[kFastScanBlockSize], ref[kFastScanBlockSize];
    for (std::size_t b = 0; b < packed.num_blocks; ++b) {
      FastScanAccumulateBlock(packed.BlockPtr(b), segments, luts.data(), simd);
      FastScanAccumulateBlockScalar(packed.BlockPtr(b), segments, luts.data(),
                                    ref);
      ASSERT_EQ(std::memcmp(simd, ref, sizeof(simd)), 0)
          << "SIMD != scalar at block " << b << " n=" << n
          << " segments=" << segments;
      const std::size_t begin = b * kFastScanBlockSize;
      const std::size_t end = std::min(begin + kFastScanBlockSize, n);
      for (std::size_t v = begin; v < end; ++v) {
        ASSERT_EQ(simd[v - begin], expected[v])
            << "vector " << v << " n=" << n << " segments=" << segments;
      }
    }
  }
}

// Regression guard for the degenerate shapes the IVF lists produce: an
// EMPTY list packs to zero blocks (nothing to scan, nothing to crash on)
// and a single-code store lives alone in a tail block whose 31 padding
// slots must stay zero.
TEST(FastScanTest, EmptyInputPacksToZeroBlocks) {
  FastScanCodes packed;
  // Pre-populate so we can tell Pack actually reset the layout.
  std::vector<std::uint8_t> one(8, 3);
  PackFastScanCodes(one.data(), 1, 8, &packed);
  ASSERT_EQ(packed.num_blocks, 1u);
  PackFastScanCodes(nullptr, 0, 8, &packed);
  EXPECT_EQ(packed.num_vectors, 0u);
  EXPECT_EQ(packed.num_blocks, 0u);
  // A scan over zero blocks is a no-op by construction; nothing to call.
}

TEST(FastScanTest, SingleCodeTailBlockIsExactAndZeroPadded) {
  Rng rng(99);
  for (const std::size_t segments : {1ul, 4ul, 17ul, 240ul}) {
    std::vector<std::uint8_t> codes(segments);
    for (auto& c : codes) c = static_cast<std::uint8_t>(rng.UniformInt(16));
    AlignedVector<std::uint8_t> luts(segments * 16);
    for (auto& l : luts) l = static_cast<std::uint8_t>(rng.UniformInt(256));
    FastScanCodes packed;
    PackFastScanCodes(codes.data(), 1, segments, &packed);
    ASSERT_EQ(packed.num_blocks, 1u);
    std::uint32_t acc[kFastScanBlockSize];
    FastScanAccumulateBlock(packed.BlockPtr(0), segments, luts.data(), acc);
    const auto expected = DirectAccumulate(codes.data(), 1, segments,
                                           luts.data());
    EXPECT_EQ(acc[0], expected[0]) << "segments=" << segments;
    // Padding slots accumulate lut[t][0] sums only -- i.e. exactly what a
    // zero-filled code yields. Verify against an explicit zero code.
    std::uint32_t zero_sum = 0;
    for (std::size_t t = 0; t < segments; ++t) zero_sum += luts[t * 16];
    for (std::size_t v = 1; v < kFastScanBlockSize; ++v) {
      EXPECT_EQ(acc[v], zero_sum) << "pad slot " << v;
    }
  }
}

TEST(FastScanTest, OverflowSafeAtMaxLutValues) {
  // All codes select LUT entries of 255 across 600 segments: the true sum
  // 153000 overflows u16 4.6x; the chunked kernel must be exact.
  const std::size_t n = 32, segments = 600;
  std::vector<std::uint8_t> codes(n * segments, 5);
  AlignedVector<std::uint8_t> luts(segments * 16, 255);
  FastScanCodes packed;
  PackFastScanCodes(codes.data(), n, segments, &packed);
  std::uint32_t acc[kFastScanBlockSize];
  FastScanAccumulateBlock(packed.BlockPtr(0), segments, luts.data(), acc);
  for (std::size_t v = 0; v < n; ++v) {
    EXPECT_EQ(acc[v], 255u * segments);
  }
}

TEST(FastScanTest, PackingLayoutPlacesNibblesCorrectly) {
  // Two segments, 33 vectors; vector v has code (v % 16) in both segments.
  const std::size_t n = 33, segments = 2;
  std::vector<std::uint8_t> codes(n * segments);
  for (std::size_t v = 0; v < n; ++v) {
    codes[v * 2] = v % 16;
    codes[v * 2 + 1] = (v + 1) % 16;
  }
  FastScanCodes packed;
  PackFastScanCodes(codes.data(), n, segments, &packed);
  ASSERT_EQ(packed.num_blocks, 2u);
  const std::uint8_t* block0 = packed.BlockPtr(0);
  // Vector 0 -> segment 0, byte 0, low nibble; vector 16 -> high nibble.
  EXPECT_EQ(block0[0] & 0xF, 0);
  EXPECT_EQ((block0[0] >> 4) & 0xF, 0);  // vector 16 code = 16 % 16 = 0
  // Vector 5 -> byte 5 low nibble = 5; vector 21 -> byte 5 high nibble = 5.
  EXPECT_EQ(block0[5] & 0xF, 5);
  EXPECT_EQ((block0[5] >> 4) & 0xF, 5);
  // Second segment of vector 5 lives at offset 16 + byte 5.
  EXPECT_EQ(block0[16 + 5] & 0xF, 6);
  // Tail block: vector 32 (code 0) at byte 0; padding elsewhere is zero.
  const std::uint8_t* block1 = packed.BlockPtr(1);
  EXPECT_EQ(block1[0] & 0xF, 0);
  EXPECT_EQ(block1[1], 0);
}

TEST(FastScanTest, LutQuantizationReconstructsWithinScale) {
  Rng rng(5);
  const std::size_t segments = 24;
  std::vector<float> luts(segments * 16);
  for (auto& v : luts) v = static_cast<float>(rng.Gaussian()) * 10.0f;
  AlignedVector<std::uint8_t> qluts;
  float scale = 0.0f, bias = 0.0f;
  QuantizeLutsToU8(luts.data(), segments, &qluts, &scale, &bias);
  ASSERT_GT(scale, 0.0f);
  // Any code sequence: |float sum - (scale * u8 sum + bias)| <= segments*scale.
  for (int trial = 0; trial < 20; ++trial) {
    float exact = 0.0f;
    std::uint32_t quantized = 0;
    for (std::size_t t = 0; t < segments; ++t) {
      const std::size_t j = rng.UniformInt(16);
      exact += luts[t * 16 + j];
      quantized += qluts[t * 16 + j];
    }
    const float recon = scale * static_cast<float>(quantized) + bias;
    EXPECT_NEAR(recon, exact, static_cast<float>(segments) * scale);
  }
}

TEST(FastScanTest, ConstantLutsQuantizeExactly) {
  const std::size_t segments = 4;
  std::vector<float> luts(segments * 16, 2.5f);
  AlignedVector<std::uint8_t> qluts;
  float scale, bias;
  QuantizeLutsToU8(luts.data(), segments, &qluts, &scale, &bias);
  for (const auto q : qluts) EXPECT_EQ(q, 0);
  EXPECT_FLOAT_EQ(bias, 2.5f * segments);
}

}  // namespace
}  // namespace rabitq
