// Filtered search: the per-query IdFilter pushed down into candidate
// selection (the fused kernel's survivors mask, and the identical checks in
// the bitwise / scalar fallbacks).
//   * brute-force-oracle equality across selectivities {0%, 1%, 50%, 99%,
//     100%} -- filtered results are EXACTLY the top-k of the allowed
//     subset, with codes_filtered accounting for every live excluded code;
//   * filter x tombstone interaction (neither double-counts the other);
//   * fused-vs-scalar survivors-mask bit-parity under random lane masks;
//   * fused-vs-bitwise estimator parity under a filter;
//   * sharded and engine parity with per-shard filter slicing (a GLOBAL-id
//     filter consulted through each shard's local->global map);
//   * predicate / allow-bitmap / deny-bitmap agreement and the
//     out-of-range bitmap semantics.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <limits>
#include <vector>

#include "core/estimator.h"
#include "core/query.h"
#include "engine/search_engine.h"
#include "index/brute_force.h"
#include "index/ivf.h"
#include "index/sharded.h"
#include "linalg/vector_ops.h"
#include "quant/fastscan.h"
#include "util/prng.h"

namespace rabitq {
namespace {

Matrix ClusteredData(std::size_t n, std::size_t dim, std::size_t clusters,
                     std::uint64_t seed) {
  Rng rng(seed);
  Matrix centers(clusters, dim);
  for (std::size_t i = 0; i < centers.size(); ++i) {
    centers.data()[i] = static_cast<float>(rng.Gaussian()) * 8.0f;
  }
  Matrix data(n, dim);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t c = rng.UniformInt(clusters);
    for (std::size_t j = 0; j < dim; ++j) {
      data.At(i, j) = centers.At(c, j) + static_cast<float>(rng.Gaussian());
    }
  }
  return data;
}

// Random allow-bitmap over [0, n) with ~selectivity fraction of bits set.
std::vector<std::uint64_t> RandomBitmap(std::size_t n, double selectivity,
                                        std::uint64_t seed,
                                        std::size_t* num_allowed) {
  Rng rng(seed);
  std::vector<std::uint64_t> bits((n + 63) / 64, 0);
  std::size_t allowed = 0;
  for (std::size_t id = 0; id < n; ++id) {
    if (static_cast<double>(rng.UniformInt(1u << 20)) <
        selectivity * static_cast<double>(1u << 20)) {
      bits[id >> 6] |= std::uint64_t{1} << (id & 63u);
      ++allowed;
    }
  }
  if (num_allowed != nullptr) *num_allowed = allowed;
  return bits;
}

bool BitSet(const std::vector<std::uint64_t>& bits, std::uint32_t id) {
  return (bits[id >> 6] >> (id & 63u)) & 1u;
}

// Exact top-k over the subset of ids that are live in `index` and allowed
// by `bits` -- the oracle filtered search must match bit-for-bit. Ties
// break by (distance, id), like TopKHeap.
std::vector<Neighbor> OracleSubsetTopK(const Matrix& data,
                                       const IvfRabitqIndex& index,
                                       const std::vector<std::uint64_t>& bits,
                                       const float* query, std::size_t k) {
  TopKHeap heap(k);
  for (std::size_t id = 0; id < data.rows(); ++id) {
    const std::uint32_t uid = static_cast<std::uint32_t>(id);
    if (index.IsDeleted(uid) || !BitSet(bits, uid)) continue;
    heap.Push(L2SqrDistance(data.Row(id), query, data.cols()), uid);
  }
  return heap.ExtractSorted();
}

class FilteredSearchTest : public ::testing::Test {
 protected:
  static constexpr std::size_t kN = 3000;
  static constexpr std::size_t kDim = 40;
  static constexpr std::size_t kK = 10;

  void SetUp() override {
    data_ = ClusteredData(kN, kDim, 16, 21);
    IvfConfig ivf;
    ivf.num_lists = 24;
    ASSERT_TRUE(index_.Build(data_, ivf, RabitqConfig{}).ok());
    queries_ = ClusteredData(8, kDim, 16, 22);
  }

  // Exhaustive settings: full probe and a huge eps0 override so the bound
  // never prunes -- kErrorBound results are then exactly the top-k of the
  // (live, allowed) candidate set (the same idiom as the sharded/lifecycle
  // oracle tests; with the paper's eps0 a bound violation at the k-th
  // boundary is a designed-in rare event).
  SearchOptions ExhaustiveOptions(std::uint64_t seed) const {
    SearchOptions options;
    options.k = kK;
    options.nprobe = index_.num_lists();
    options.epsilon0_override = 50.0f;
    options.seed = seed;
    return options;
  }

  Matrix data_;
  Matrix queries_;
  IvfRabitqIndex index_;
};

TEST_F(FilteredSearchTest, OracleEqualityAcrossSelectivities) {
  for (const double selectivity : {0.0, 0.01, 0.5, 0.99, 1.0}) {
    std::size_t allowed = 0;
    const auto bits = RandomBitmap(kN, selectivity, 777, &allowed);
    for (std::size_t q = 0; q < queries_.rows(); ++q) {
      SearchRequest request{queries_.Row(q), ExhaustiveOptions(900 + q)};
      request.options.filter = IdFilter::AllowBitmap(bits.data(), kN);
      const SearchResponse response = index_.Search(request);
      ASSERT_TRUE(response.ok()) << response.status.ToString();
      const auto oracle =
          OracleSubsetTopK(data_, index_, bits, queries_.Row(q), kK);
      ASSERT_EQ(response.neighbors.size(), oracle.size())
          << "selectivity " << selectivity;
      for (std::size_t i = 0; i < oracle.size(); ++i) {
        EXPECT_EQ(response.neighbors[i].second, oracle[i].second);
        EXPECT_EQ(response.neighbors[i].first, oracle[i].first);
      }
      // Exhaustive probing scans every live code exactly once, so the
      // filter drops exactly the live-but-disallowed ones.
      EXPECT_EQ(response.stats.codes_filtered, kN - allowed)
          << "selectivity " << selectivity;
      if (selectivity == 1.0) {
        EXPECT_EQ(response.stats.codes_filtered, 0u);
      } else {
        EXPECT_GT(response.stats.codes_filtered, 0u);
      }
      if (selectivity == 0.0) {
        EXPECT_TRUE(response.neighbors.empty());
      }
    }
  }
}

TEST_F(FilteredSearchTest, UnfilteredRequestMatchesAndReportsZeroFiltered) {
  for (std::size_t q = 0; q < queries_.rows(); ++q) {
    SearchRequest plain{queries_.Row(q), ExhaustiveOptions(42 + q)};
    SearchRequest inactive = plain;
    inactive.options.filter = IdFilter{};  // default: inactive
    const SearchResponse a = index_.Search(plain);
    const SearchResponse b = index_.Search(inactive);
    ASSERT_TRUE(a.ok() && b.ok());
    EXPECT_EQ(a.neighbors, b.neighbors);
    EXPECT_EQ(a.stats.codes_filtered, 0u);
  }
}

TEST_F(FilteredSearchTest, FilterTombstoneInteraction) {
  // Tombstone every id divisible by 3, filter to even ids: results must be
  // the top-k over ids that are even AND not divisible by 3; neither the
  // tombstones nor the filter leak into codes_filtered's accounting of the
  // other.
  std::size_t live = 0, live_and_allowed = 0;
  std::vector<std::uint64_t> bits((kN + 63) / 64, 0);
  for (std::uint32_t id = 0; id < kN; ++id) {
    if (id % 3 == 0) {
      ASSERT_TRUE(index_.Delete(id).ok());
    } else {
      ++live;
    }
    if (id % 2 == 0) {
      bits[id >> 6] |= std::uint64_t{1} << (id & 63u);
      if (id % 3 != 0) ++live_and_allowed;
    }
  }
  for (std::size_t q = 0; q < queries_.rows(); ++q) {
    SearchRequest request{queries_.Row(q), ExhaustiveOptions(31 + q)};
    request.options.filter = IdFilter::AllowBitmap(bits.data(), kN);
    const SearchResponse response = index_.Search(request);
    ASSERT_TRUE(response.ok());
    const auto oracle =
        OracleSubsetTopK(data_, index_, bits, queries_.Row(q), kK);
    EXPECT_EQ(response.neighbors, oracle);
    for (const Neighbor& nb : response.neighbors) {
      EXPECT_EQ(nb.second % 2, 0u);
      EXPECT_NE(nb.second % 3, 0u);
    }
    // codes_filtered counts live codes the filter excluded -- tombstoned
    // entries are the dead mask's job, not the filter's.
    EXPECT_EQ(response.stats.codes_filtered, live - live_and_allowed);
  }
}

TEST_F(FilteredSearchTest, PredicateNeverSeesTombstonedIds) {
  // The IdFilter contract: predicates run only on LIVE candidate ids, so a
  // caller may key them off live-only metadata. Pinned for the fused path
  // (per-block mask) and the bitwise fallback alike.
  for (std::uint32_t id = 0; id < kN; id += 4) {
    ASSERT_TRUE(index_.Delete(id).ok());
  }
  struct Ctx {
    const IvfRabitqIndex* index;
    std::size_t dead_seen = 0;
  } ctx{&index_, 0};
  const auto pred = [](void* context, std::uint32_t id) {
    Ctx* c = static_cast<Ctx*>(context);
    if (c->index->IsDeleted(id)) ++c->dead_seen;
    return id % 2 == 0;
  };
  for (const bool batch_estimator : {true, false}) {
    SearchRequest request{queries_.Row(0), ExhaustiveOptions(12)};
    request.options.use_batch_estimator = batch_estimator;
    request.options.filter = IdFilter::FromPredicate(pred, &ctx);
    ASSERT_TRUE(index_.Search(request).ok());
    EXPECT_EQ(ctx.dead_seen, 0u) << "batch_estimator=" << batch_estimator;
  }
}

TEST_F(FilteredSearchTest, FusedAndBitwiseEstimatorsAgreeUnderFilter) {
  std::size_t allowed = 0;
  const auto bits = RandomBitmap(kN, 0.5, 999, &allowed);
  for (const RerankPolicy policy :
       {RerankPolicy::kErrorBound, RerankPolicy::kFixedCandidates,
        RerankPolicy::kNone}) {
    for (std::size_t q = 0; q < queries_.rows(); ++q) {
      SearchRequest request{queries_.Row(q), ExhaustiveOptions(555 + q)};
      request.options.policy = policy;
      request.options.rerank_candidates = 64;
      // Paper eps0: in-kernel lower-bound pruning stays LIVE here -- this
      // pins fused-vs-bitwise parity with filter, pruning and re-ranking
      // all interacting, not just the never-prune oracle setting.
      request.options.epsilon0_override = -1.0f;
      request.options.filter = IdFilter::AllowBitmap(bits.data(), kN);
      SearchRequest bitwise = request;
      bitwise.options.use_batch_estimator = false;
      const SearchResponse a = index_.Search(request);
      const SearchResponse b = index_.Search(bitwise);
      ASSERT_TRUE(a.ok() && b.ok());
      EXPECT_EQ(a.neighbors, b.neighbors);
      EXPECT_EQ(a.stats.codes_filtered, b.stats.codes_filtered);
      for (const Neighbor& nb : a.neighbors) {
        EXPECT_TRUE(BitSet(bits, nb.second));
      }
    }
  }
}

TEST_F(FilteredSearchTest, FixedCandidatesOracleEqualityAtFullBudget) {
  // With R >= allowed-set size the re-rank covers every allowed candidate,
  // so filtered kFixedCandidates is exact too.
  std::size_t allowed = 0;
  const auto bits = RandomBitmap(kN, 0.05, 4242, &allowed);
  for (std::size_t q = 0; q < queries_.rows(); ++q) {
    SearchRequest request{queries_.Row(q), ExhaustiveOptions(77 + q)};
    request.options.policy = RerankPolicy::kFixedCandidates;
    request.options.rerank_candidates = kN;
    request.options.filter = IdFilter::AllowBitmap(bits.data(), kN);
    const SearchResponse response = index_.Search(request);
    ASSERT_TRUE(response.ok());
    EXPECT_EQ(response.neighbors,
              OracleSubsetTopK(data_, index_, bits, queries_.Row(q), kK));
  }
}

TEST_F(FilteredSearchTest, PredicateDenyAndAllowAgree) {
  std::size_t allowed = 0;
  const auto bits = RandomBitmap(kN, 0.5, 31337, &allowed);
  // Deny-bitmap complement of the allow bitmap over the id space.
  std::vector<std::uint64_t> deny(bits.size());
  for (std::size_t w = 0; w < bits.size(); ++w) deny[w] = ~bits[w];

  struct Ctx {
    const std::vector<std::uint64_t>* bits;
  } ctx{&bits};
  const auto pred = [](void* context, std::uint32_t id) {
    return BitSet(*static_cast<Ctx*>(context)->bits, id);
  };

  for (std::size_t q = 0; q < queries_.rows(); ++q) {
    SearchRequest request{queries_.Row(q), ExhaustiveOptions(606 + q)};
    request.options.filter = IdFilter::AllowBitmap(bits.data(), kN);
    const SearchResponse via_allow = index_.Search(request);
    request.options.filter = IdFilter::DenyBitmap(deny.data(), kN);
    const SearchResponse via_deny = index_.Search(request);
    request.options.filter = IdFilter::FromPredicate(pred, &ctx);
    const SearchResponse via_pred = index_.Search(request);
    ASSERT_TRUE(via_allow.ok() && via_deny.ok() && via_pred.ok());
    EXPECT_EQ(via_allow.neighbors, via_deny.neighbors);
    EXPECT_EQ(via_allow.neighbors, via_pred.neighbors);
    EXPECT_EQ(via_allow.stats.codes_filtered, via_deny.stats.codes_filtered);
    EXPECT_EQ(via_allow.stats.codes_filtered, via_pred.stats.codes_filtered);
  }
}

TEST_F(FilteredSearchTest, OutOfRangeBitmapSemantics) {
  // Bitmaps covering only [0, kN) while the index grows: appended ids are
  // denied by an allow-bitmap and admitted by a deny-bitmap.
  std::vector<float> vec(kDim, 0.25f);
  std::uint32_t new_id = 0;
  ASSERT_TRUE(index_.Add(vec.data(), &new_id).ok());
  ASSERT_EQ(new_id, kN);

  std::vector<std::uint64_t> all_set((kN + 63) / 64,
                                     ~std::uint64_t{0});  // covers old ids
  SearchRequest request{vec.data(), ExhaustiveOptions(5)};
  request.options.filter = IdFilter::AllowBitmap(all_set.data(), kN);
  const SearchResponse via_allow = index_.Search(request);
  ASSERT_TRUE(via_allow.ok());
  for (const Neighbor& nb : via_allow.neighbors) EXPECT_NE(nb.second, new_id);

  std::vector<std::uint64_t> none_set((kN + 63) / 64, 0);
  request.options.filter = IdFilter::DenyBitmap(none_set.data(), kN);
  const SearchResponse via_deny = index_.Search(request);
  ASSERT_TRUE(via_deny.ok());
  // The query IS the appended vector, so under a filter that denies nothing
  // the new id must surface as the nearest hit.
  ASSERT_FALSE(via_deny.neighbors.empty());
  EXPECT_EQ(via_deny.neighbors.front().second, new_id);
}

// ---------------------------------------------------------------------------
// Kernel-level parity: the pruned fused kernel's survivors mask vs its
// scalar reference, under random lane masks, tombstones and thresholds.

TEST(FilteredKernelTest, FusedVsScalarMaskBitParity) {
  for (const std::size_t n : {32u, 61u, 96u, 127u}) {
    Rng rng(1000 + n);
    const std::size_t dim = 48;
    RabitqConfig config;
    config.seed = 17 * n;
    RabitqEncoder encoder;
    ASSERT_TRUE(encoder.Init(dim, config).ok());
    RabitqCodeStore store;
    store.Init(encoder.total_bits());
    std::vector<float> centroid(dim);
    for (auto& x : centroid) x = static_cast<float>(rng.Gaussian()) * 0.5f;
    std::vector<float> v(dim);
    for (std::size_t i = 0; i < n; ++i) {
      for (auto& x : v) x = static_cast<float>(rng.Gaussian());
      ASSERT_TRUE(encoder.EncodeAppend(v.data(), centroid.data(), &store).ok());
    }
    store.Finalize();

    std::vector<float> query(dim);
    for (auto& x : query) x = static_cast<float>(rng.Gaussian());
    Rng qrng(n);
    QuantizedQuery qq;
    ASSERT_TRUE(
        PrepareQuery(encoder, query.data(), centroid.data(), &qrng, &qq).ok());
    ASSERT_TRUE(qq.has_exact_luts);

    std::vector<std::uint8_t> dead(store.size(), 0);
    for (std::size_t i = 0; i < dead.size(); ++i) {
      dead[i] = rng.UniformInt(5) == 0 ? 1 : 0;
    }

    const FastScanCodes& packed = store.packed();
    std::uint32_t sums[kFastScanBlockSize];
    for (std::size_t block = 0; block < packed.num_blocks; ++block) {
      FastScanAccumulateBlock(packed.BlockPtr(block), packed.num_segments,
                              qq.luts.data(), sums);
      const std::size_t begin = block * kFastScanBlockSize;
      for (int trial = 0; trial < 8; ++trial) {
        const std::uint32_t lane_mask =
            static_cast<std::uint32_t>(rng.NextU64());
        const float threshold =
            trial == 0 ? std::numeric_limits<float>::infinity()
                       : 1.0f + 4.0f * rng.UniformFloat();
        float fused_d[kFastScanBlockSize], fused_lb[kFastScanBlockSize];
        float ref_d[kFastScanBlockSize], ref_lb[kFastScanBlockSize];
        const std::uint32_t fused_mask = EstimateBlockFusedPruned(
            qq, store, block, sums, encoder.config().epsilon0, threshold,
            dead.data() + begin, fused_d, fused_lb, lane_mask);
        const std::uint32_t ref_mask = EstimateBlockFusedPrunedScalar(
            qq, store, block, sums, encoder.config().epsilon0, threshold,
            dead.data() + begin, ref_d, ref_lb, lane_mask);
        EXPECT_EQ(fused_mask, ref_mask)
            << "n=" << n << " block=" << block << " mask=" << lane_mask;
        // No lane outside lane_mask may survive; surviving lanes carry
        // bit-identical estimates.
        EXPECT_EQ(fused_mask & ~lane_mask, 0u);
        const std::size_t count =
            std::min(kFastScanBlockSize, store.size() - begin);
        for (std::size_t k = 0; k < count; ++k) {
          if ((fused_mask >> k) & 1u) {
            EXPECT_EQ(fused_d[k], ref_d[k]);
            EXPECT_EQ(fused_lb[k], ref_lb[k]);
            EXPECT_EQ(dead[begin + k], 0);
          }
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Sharded / engine parity with per-shard filter slicing.

class ShardedFilterTest : public ::testing::Test {
 protected:
  static constexpr std::size_t kN = 2400;
  static constexpr std::size_t kDim = 32;
  static constexpr std::size_t kK = 10;

  void SetUp() override {
    data_ = ClusteredData(kN, kDim, 12, 51);
    queries_ = ClusteredData(6, kDim, 12, 52);
    bits_ = RandomBitmap(kN, 0.5, 8181, &allowed_);
  }

  ShardedIndex BuildSharded(std::size_t shards) {
    ShardedConfig config;
    config.num_shards = shards;
    config.clustering = ShardClustering::kShared;
    config.ivf.num_lists = 20;
    ShardedIndex index;
    EXPECT_TRUE(index.Build(data_, config).ok());
    return index;
  }

  SearchOptions FilteredOptions(std::uint64_t seed) const {
    SearchOptions options;
    options.k = kK;
    options.nprobe = 20;
    // Never-prune override: shard-count bit-identity for kErrorBound holds
    // unconditionally only when no bound violation can occur at the k-th
    // boundary (each shard prunes against its own weaker threshold).
    options.epsilon0_override = 50.0f;
    options.seed = seed;
    options.filter = IdFilter::AllowBitmap(bits_.data(), kN);
    return options;
  }

  Matrix data_;
  Matrix queries_;
  std::vector<std::uint64_t> bits_;
  std::size_t allowed_ = 0;
};

TEST_F(ShardedFilterTest, ShardCountsAgreeBitIdentically) {
  ShardedIndex one = BuildSharded(1);
  ShardedIndex three = BuildSharded(3);
  for (std::size_t q = 0; q < queries_.rows(); ++q) {
    const SearchRequest request{queries_.Row(q), FilteredOptions(17 + q)};
    const SearchResponse a = one.Search(request);
    const SearchResponse b = three.Search(request);
    ASSERT_TRUE(a.ok() && b.ok());
    // kShared clustering + global-id filter sliced per shard: the candidate
    // set (and with it the result) is shard-layout independent.
    EXPECT_EQ(a.neighbors, b.neighbors);
    EXPECT_EQ(a.stats.codes_filtered, b.stats.codes_filtered);
    for (const Neighbor& nb : a.neighbors) {
      EXPECT_TRUE(BitSet(bits_, nb.second));
    }
  }
}

TEST_F(ShardedFilterTest, EngineBatchMatchesSequentialFilteredReference) {
  ShardedIndex reference = BuildSharded(3);
  std::vector<SearchResponse> expected;
  std::vector<SearchRequest> requests;
  for (std::size_t q = 0; q < queries_.rows(); ++q) {
    requests.push_back({queries_.Row(q), FilteredOptions(400 + q)});
    expected.push_back(reference.Search(requests.back()));
    ASSERT_TRUE(expected.back().ok());
  }

  SearchEngine engine(BuildSharded(3), EngineConfig{});
  std::vector<SearchResponse> responses;
  ASSERT_TRUE(
      engine.SearchBatch(requests.data(), requests.size(), &responses).ok());
  ASSERT_EQ(responses.size(), expected.size());
  std::uint64_t filtered_total = 0;
  for (std::size_t q = 0; q < responses.size(); ++q) {
    EXPECT_EQ(responses[q].neighbors, expected[q].neighbors);
    EXPECT_EQ(responses[q].stats.codes_filtered,
              expected[q].stats.codes_filtered);
    filtered_total += responses[q].stats.codes_filtered;
  }
  EXPECT_GT(filtered_total, 0u);
  // The satellite stats plumbing: per-query filter counts aggregate into
  // the engine's serving stats endpoint.
  EXPECT_EQ(engine.Stats().codes_filtered, filtered_total);
}

TEST_F(ShardedFilterTest, AsyncFilteredSubmissionMatchesSync) {
  SearchEngine engine(BuildSharded(2), EngineConfig{});
  for (std::size_t q = 0; q < queries_.rows(); ++q) {
    const SearchRequest request{queries_.Row(q), FilteredOptions(73 + q)};
    SearchResponse via_async = engine.SubmitAsync(request).get();
    SearchResponse via_sync = engine.Search(request);
    ASSERT_TRUE(via_async.ok() && via_sync.ok());
    EXPECT_EQ(via_async.neighbors, via_sync.neighbors);
    for (const Neighbor& nb : via_async.neighbors) {
      EXPECT_TRUE(BitSet(bits_, nb.second));
    }
  }
}

}  // namespace
}  // namespace rabitq
