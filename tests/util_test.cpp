// Unit tests for the util substrate: Status, bit operations, PRNG,
// aligned storage, thread pool, and *vecs file I/O.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <numeric>
#include <string>

#include "util/aligned_buffer.h"
#include "util/bit_ops.h"
#include "util/io.h"
#include "util/prng.h"
#include "util/status.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace rabitq {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad dim");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad dim");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad dim");
}

TEST(StatusTest, AllFactoriesProduceMatchingCodes) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::IoError("x").code(), StatusCode::kIoError);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  auto fails = []() -> Status { return Status::Internal("inner"); };
  auto outer = [&]() -> Status {
    RABITQ_RETURN_IF_ERROR(fails());
    return Status::Ok();
  };
  EXPECT_EQ(outer().code(), StatusCode::kInternal);
}

TEST(BitOpsTest, WordsForBits) {
  EXPECT_EQ(WordsForBits(0), 0u);
  EXPECT_EQ(WordsForBits(1), 1u);
  EXPECT_EQ(WordsForBits(64), 1u);
  EXPECT_EQ(WordsForBits(65), 2u);
  EXPECT_EQ(WordsForBits(128), 2u);
}

TEST(BitOpsTest, SetGetBitRoundTrip) {
  std::uint64_t words[2] = {0, 0};
  SetBit(words, 0);
  SetBit(words, 63);
  SetBit(words, 64);
  SetBit(words, 127);
  EXPECT_TRUE(GetBit(words, 0));
  EXPECT_TRUE(GetBit(words, 63));
  EXPECT_TRUE(GetBit(words, 64));
  EXPECT_TRUE(GetBit(words, 127));
  EXPECT_FALSE(GetBit(words, 1));
  EXPECT_FALSE(GetBit(words, 100));
}

TEST(BitOpsTest, PopCountMatchesManualCount) {
  Rng rng(99);
  std::uint64_t words[4];
  for (auto& w : words) w = rng.NextU64();
  std::uint32_t manual = 0;
  for (std::size_t i = 0; i < 256; ++i) manual += GetBit(words, i) ? 1 : 0;
  EXPECT_EQ(PopCount(words, 4), manual);
}

TEST(BitOpsTest, BinaryDotMatchesElementwise) {
  Rng rng(7);
  std::uint64_t a[3], b[3];
  for (int i = 0; i < 3; ++i) {
    a[i] = rng.NextU64();
    b[i] = rng.NextU64();
  }
  std::uint32_t manual = 0;
  for (std::size_t i = 0; i < 192; ++i) {
    manual += (GetBit(a, i) && GetBit(b, i)) ? 1 : 0;
  }
  EXPECT_EQ(BinaryDot(a, b, 3), manual);
}

TEST(BitOpsTest, BitPlaneDotWeightsPlanesByPowersOfTwo) {
  // code = all ones; plane j has popcount p_j => result = sum 2^j p_j.
  std::uint64_t code[1] = {~std::uint64_t{0}};
  std::uint64_t planes[3] = {0xF, 0xFF, 0x3};  // popcounts 4, 8, 2
  EXPECT_EQ(BitPlaneDot(code, planes, 3, 1), 4u + 2u * 8u + 4u * 2u);
}

TEST(BitOpsTest, GetNibbleExtractsFourBitGroups) {
  std::uint64_t words[2] = {0xFEDCBA9876543210ULL, 0x0F0F0F0F0F0F0F0FULL};
  for (std::size_t i = 0; i < 16; ++i) {
    EXPECT_EQ(GetNibble(words, i), i);
  }
  EXPECT_EQ(GetNibble(words, 16), 0xFu);
  EXPECT_EQ(GetNibble(words, 17), 0x0u);
}

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(12345), b(12345);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += a.NextU64() == b.NextU64();
  EXPECT_LT(equal, 3);
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.UniformDouble();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformIntInRange) {
  Rng rng(4);
  std::vector<int> histogram(10, 0);
  for (int i = 0; i < 100000; ++i) {
    const std::uint64_t v = rng.UniformInt(10);
    ASSERT_LT(v, 10u);
    ++histogram[v];
  }
  // Each bucket should get ~10000; allow generous slack.
  for (const int count : histogram) {
    EXPECT_GT(count, 9000);
    EXPECT_LT(count, 11000);
  }
}

TEST(RngTest, GaussianMomentsAreStandard) {
  Rng rng(5);
  const int n = 200000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double g = rng.Gaussian();
    sum += g;
    sum_sq += g * g;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.01);
  EXPECT_NEAR(var, 1.0, 0.02);
}

TEST(AlignedBufferTest, DataIsCacheLineAligned) {
  AlignedVector<float> v(100);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(v.data()) % kCacheLineBytes, 0u);
  AlignedVector<std::uint64_t> w(3);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(w.data()) % kCacheLineBytes, 0u);
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(10000);
  pool.ParallelFor(hits.size(), [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, SmallRangeRunsInline) {
  ThreadPool pool(4);
  int calls = 0;
  pool.ParallelFor(10, [&](std::size_t begin, std::size_t end) {
    EXPECT_EQ(begin, 0u);
    EXPECT_EQ(end, 10u);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPoolTest, SubmitAndWait) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int i = 0; i < 50; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 50);
}

TEST(TimerTest, MeasuresElapsedTime) {
  WallTimer timer;
  double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink += i;
  EXPECT_GT(sink, 0.0);
  EXPECT_GE(timer.ElapsedNanos(), 0);
  EXPECT_GE(timer.ElapsedSeconds(), 0.0);
}

class IoTest : public ::testing::Test {
 protected:
  std::string TempPath(const std::string& name) {
    return ::testing::TempDir() + "/" + name;
  }
};

TEST_F(IoTest, FvecsRoundTrip) {
  const std::string path = TempPath("roundtrip.fvecs");
  std::vector<float> data = {1.5f, -2.0f, 0.0f, 3.25f, 4.0f, -5.5f};
  ASSERT_TRUE(WriteFvecs(path, data.data(), 2, 3).ok());
  std::vector<float> loaded;
  std::size_t n = 0, dim = 0;
  ASSERT_TRUE(ReadFvecs(path, &loaded, &n, &dim).ok());
  EXPECT_EQ(n, 2u);
  EXPECT_EQ(dim, 3u);
  EXPECT_EQ(loaded, data);
  std::remove(path.c_str());
}

TEST_F(IoTest, IvecsRoundTrip) {
  const std::string path = TempPath("roundtrip.ivecs");
  std::vector<std::int32_t> data = {1, 2, 3, -4, 5, 6, 7, -8};
  ASSERT_TRUE(WriteIvecs(path, data.data(), 2, 4).ok());
  std::vector<std::int32_t> loaded;
  std::size_t n = 0, dim = 0;
  ASSERT_TRUE(ReadIvecs(path, &loaded, &n, &dim).ok());
  EXPECT_EQ(n, 2u);
  EXPECT_EQ(dim, 4u);
  EXPECT_EQ(loaded, data);
  std::remove(path.c_str());
}

TEST_F(IoTest, MissingFileIsIoError) {
  std::vector<float> out;
  std::size_t n, dim;
  EXPECT_EQ(ReadFvecs("/nonexistent/path.fvecs", &out, &n, &dim).code(),
            StatusCode::kIoError);
}

TEST_F(IoTest, InconsistentDimensionalityRejected) {
  const std::string path = TempPath("bad.fvecs");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  auto write_record = [&](std::int32_t dim) {
    std::fwrite(&dim, sizeof(dim), 1, f);
    std::vector<float> payload(dim, 1.0f);
    std::fwrite(payload.data(), sizeof(float), payload.size(), f);
  };
  write_record(3);
  write_record(4);
  std::fclose(f);
  std::vector<float> out;
  std::size_t n, dim;
  EXPECT_EQ(ReadFvecs(path, &out, &n, &dim).code(), StatusCode::kIoError);
  std::remove(path.c_str());
}

TEST_F(IoTest, TruncatedRecordRejected) {
  const std::string path = TempPath("trunc.fvecs");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  const std::int32_t dim = 8;
  std::fwrite(&dim, sizeof(dim), 1, f);
  const float partial[3] = {1, 2, 3};
  std::fwrite(partial, sizeof(float), 3, f);
  std::fclose(f);
  std::vector<float> out;
  std::size_t n, d;
  EXPECT_EQ(ReadFvecs(path, &out, &n, &d).code(), StatusCode::kIoError);
  std::remove(path.c_str());
}

TEST_F(IoTest, NullOutputsRejected) {
  std::size_t n, dim;
  std::vector<float> out;
  EXPECT_EQ(ReadFvecs("x", nullptr, &n, &dim).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ReadFvecs("x", &out, nullptr, &dim).code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace rabitq
