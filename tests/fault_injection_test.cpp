// Deterministic fault-injection tests (util/failpoint.h). The registry
// semantics are always compiled, so the mode tests run everywhere; the
// trigger-site tests need a build with -DRABITQ_FAILPOINTS=ON (CMake option
// RABITQ_FAILPOINTS) and skip themselves otherwise -- the CI failpoints job
// is what actually exercises them.
//
// Covered sites: torn snapshot writes (the old snapshot must survive, both
// the single-file blob and the sharded manifest+blob directory), snapshot
// read faults, a hard per-shard search failure degrading (not failing) the
// scatter-gather merge, injected admission rejection, and a forced mid-scan
// deadline stop returning partial results.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "engine/search_engine.h"
#include "index/ivf.h"
#include "index/sharded.h"
#include "linalg/vector_ops.h"
#include "util/failpoint.h"
#include "util/prng.h"

namespace rabitq {
namespace {

Matrix ClusteredData(std::size_t n, std::size_t dim, std::size_t clusters,
                     std::uint64_t seed) {
  Rng rng(seed);
  Matrix centers(clusters, dim);
  for (std::size_t i = 0; i < centers.size(); ++i) {
    centers.data()[i] = static_cast<float>(rng.Gaussian()) * 8.0f;
  }
  Matrix data(n, dim);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t c = rng.UniformInt(clusters);
    for (std::size_t j = 0; j < dim; ++j) {
      data.At(i, j) = centers.At(c, j) + static_cast<float>(rng.Gaussian());
    }
  }
  return data;
}

IvfRabitqIndex BuildIndex(const Matrix& data, std::size_t num_lists) {
  IvfRabitqIndex index;
  IvfConfig ivf;
  ivf.num_lists = num_lists;
  EXPECT_TRUE(index.Build(data, ivf, RabitqConfig{}).ok());
  return index;
}

void ExpectSameNeighbors(const std::vector<Neighbor>& a,
                         const std::vector<Neighbor>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].second, b[i].second) << "rank " << i;
    EXPECT_EQ(a[i].first, b[i].first) << "rank " << i;
  }
}

// ------------------------------------------------------------------------
// Registry semantics: compiled in every build.

TEST(FailpointRegistryTest, ModeSemanticsAreDeterministic) {
  fail::ClearAll();
  EXPECT_FALSE(fail::Triggered("fpt.unknown"));
  EXPECT_EQ(fail::HitCount("fpt.unknown"), 0u);

  // kOnce, default arg: the first hit and only the first hit.
  fail::Configure("fpt.once", fail::Mode::kOnce);
  EXPECT_TRUE(fail::Triggered("fpt.once"));
  EXPECT_FALSE(fail::Triggered("fpt.once"));
  EXPECT_EQ(fail::HitCount("fpt.once"), 2u);

  // kOnce with arg: exactly the arg-th hit.
  fail::Configure("fpt.third", fail::Mode::kOnce, 3);
  EXPECT_FALSE(fail::Triggered("fpt.third"));
  EXPECT_FALSE(fail::Triggered("fpt.third"));
  EXPECT_TRUE(fail::Triggered("fpt.third"));
  EXPECT_FALSE(fail::Triggered("fpt.third"));

  // kEveryN fires on hits N, 2N, 3N, ...
  fail::Configure("fpt.every", fail::Mode::kEveryN, 2);
  const std::vector<bool> expected = {false, true, false, true, false, true};
  std::vector<bool> fired;
  for (std::size_t i = 0; i < expected.size(); ++i) {
    fired.push_back(fail::Triggered("fpt.every"));
  }
  EXPECT_EQ(fired, expected);

  // Reconfiguring resets the hit counter.
  fail::Configure("fpt.every", fail::Mode::kEveryN, 2);
  EXPECT_FALSE(fail::Triggered("fpt.every"));
  EXPECT_EQ(fail::HitCount("fpt.every"), 1u);

  // kSeededPermille is a pure function of (seed, hit index): replaying the
  // same configuration yields the identical injection pattern.
  fail::Configure("fpt.seeded", fail::Mode::kSeededPermille, 500, 42);
  std::vector<bool> first;
  for (int i = 0; i < 64; ++i) first.push_back(fail::Triggered("fpt.seeded"));
  fail::Configure("fpt.seeded", fail::Mode::kSeededPermille, 500, 42);
  std::vector<bool> second;
  for (int i = 0; i < 64; ++i) second.push_back(fail::Triggered("fpt.seeded"));
  EXPECT_EQ(first, second);
  // ~500 permille should fire sometimes but not always.
  EXPECT_NE(std::count(first.begin(), first.end(), true), 0);
  EXPECT_NE(std::count(first.begin(), first.end(), false), 0);

  // Clear disarms a single point; others stay armed.
  fail::Clear("fpt.every");
  EXPECT_FALSE(fail::Triggered("fpt.every"));
  fail::Configure("fpt.always", fail::Mode::kAlways);
  EXPECT_TRUE(fail::Triggered("fpt.always"));

  fail::ClearAll();
  EXPECT_FALSE(fail::Triggered("fpt.always"));
  EXPECT_EQ(fail::HitCount("fpt.once"), 0u);
}

// ------------------------------------------------------------------------
// Trigger sites: need RABITQ_FAILPOINTS=ON.

class FaultInjectionTest : public ::testing::Test {
 protected:
  static constexpr std::size_t kDim = 24;

  void SetUp() override {
    if (!fail::FailpointsCompiledIn()) {
      GTEST_SKIP() << "build with -DRABITQ_FAILPOINTS=ON to run trigger-site "
                      "fault-injection tests";
    }
    fail::ClearAll();
    data_ = ClusteredData(800, kDim, 10, 1);
    other_data_ = ClusteredData(800, kDim, 10, 2);
    query_ = ClusteredData(4, kDim, 10, 3);
    params_.k = 10;
    params_.nprobe = 6;
    params_.seed = 77;
  }

  void TearDown() override { fail::ClearAll(); }

  SearchRequest Request(const Matrix& queries, std::size_t qi) const {
    SearchRequest request;
    request.query = queries.Row(qi);
    request.options = params_;
    return request;
  }

  Matrix data_;
  Matrix other_data_;
  Matrix query_;
  SearchOptions params_;
};

// A write fault mid-save must leave the PREVIOUS snapshot untouched and
// loadable, and must not litter the directory with the temp file.
TEST_F(FaultInjectionTest, TornSnapshotWritePreservesOldSnapshot) {
  const std::string path = ::testing::TempDir() + "/fault_single.rbq";
  std::filesystem::remove(path);

  IvfRabitqIndex original = BuildIndex(data_, 8);
  ASSERT_TRUE(original.Save(path).ok());
  const SearchResponse reference = original.Search(Request(query_, 0));
  ASSERT_TRUE(reference.ok());

  // Overwriting with a DIFFERENT index dies mid-write...
  IvfRabitqIndex replacement = BuildIndex(other_data_, 8);
  fail::Configure("snapshot.write", fail::Mode::kAlways);
  const Status torn = replacement.Save(path);
  EXPECT_FALSE(torn.ok());
  EXPECT_NE(torn.message().find("injected"), std::string::npos);
  fail::Clear("snapshot.write");

  // ...but the rename-into-place never happened: no temp litter, and the
  // old snapshot still loads bit-identically.
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
  IvfRabitqIndex reloaded;
  ASSERT_TRUE(reloaded.Load(path).ok());
  const SearchResponse after = reloaded.Search(Request(query_, 0));
  ASSERT_TRUE(after.ok());
  ExpectSameNeighbors(reference.neighbors, after.neighbors);
}

// Same contract for the sharded directory snapshot: a blob write fault
// anywhere in the two-phase save (manifest tmp -> blob .new -> publish)
// aborts the whole save, cleans up, and leaves the old manifest + blobs
// serving the old index.
TEST_F(FaultInjectionTest, TornShardedSavePreservesOldDirectory) {
  const std::string dir = ::testing::TempDir() + "/fault_sharded";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  ShardedConfig config;
  config.num_shards = 3;
  config.ivf.num_lists = 8;
  ShardedIndex original;
  ASSERT_TRUE(original.Build(data_, config).ok());
  ASSERT_TRUE(original.Save(dir).ok());
  const SearchResponse reference = original.Search(Request(query_, 0));
  ASSERT_TRUE(reference.ok());

  ShardedIndex replacement;
  ASSERT_TRUE(replacement.Build(other_data_, config).ok());
  // kOnce arg=2: the fault lands mid-way through one shard's list loop, a
  // partially written blob rather than a clean first-byte failure.
  fail::Configure("snapshot.write", fail::Mode::kOnce, 2);
  EXPECT_FALSE(replacement.Save(dir).ok());
  fail::Clear("snapshot.write");

  // No temp litter from either phase survives the cleanup.
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    const std::string name = entry.path().filename().string();
    EXPECT_EQ(name.find(".tmp"), std::string::npos) << name;
    EXPECT_EQ(name.find(".new"), std::string::npos) << name;
  }

  ShardedIndex reloaded;
  ASSERT_TRUE(reloaded.Load(dir).ok());
  EXPECT_EQ(reloaded.num_shards(), 3u);
  const SearchResponse after = reloaded.Search(Request(query_, 0));
  ASSERT_TRUE(after.ok());
  ExpectSameNeighbors(reference.neighbors, after.neighbors);
}

// A read fault surfaces as a load error; clearing it recovers.
TEST_F(FaultInjectionTest, SnapshotReadFaultSurfacesAndRecovers) {
  const std::string path = ::testing::TempDir() + "/fault_read.rbq";
  IvfRabitqIndex index = BuildIndex(data_, 8);
  ASSERT_TRUE(index.Save(path).ok());

  fail::Configure("snapshot.read", fail::Mode::kAlways);
  IvfRabitqIndex loaded;
  const Status status = loaded.Load(path);
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find("injected"), std::string::npos);
  fail::Clear("snapshot.read");
  EXPECT_TRUE(loaded.Load(path).ok());
}

// One shard hard-failing degrades the scatter-gather merge instead of
// failing the query: results come from the surviving shards, the response
// is flagged partial with the shard tallies, and the status stays ok.
TEST_F(FaultInjectionTest, ShardFailureDegradesScatterGather) {
  ShardedConfig config;
  config.num_shards = 3;
  config.ivf.num_lists = 8;
  ShardedIndex index;
  ASSERT_TRUE(index.Build(data_, config).ok());

  const SearchResponse full = index.Search(Request(query_, 0));
  ASSERT_TRUE(full.ok());
  EXPECT_EQ(full.shards_ok, 3u);
  EXPECT_EQ(full.shards_failed, 0u);
  EXPECT_FALSE(full.partial);

  // First SearchShard call (shard 0; the bare index fans out sequentially)
  // fails; the other two still answer.
  fail::Configure("sharded.search_shard", fail::Mode::kOnce);
  const SearchResponse degraded = index.Search(Request(query_, 0));
  EXPECT_TRUE(degraded.ok()) << degraded.status.message();
  EXPECT_TRUE(degraded.partial);
  EXPECT_EQ(degraded.shards_ok, 2u);
  EXPECT_EQ(degraded.shards_failed, 1u);
  EXPECT_FALSE(degraded.neighbors.empty());
  // Round-robin placement (gid % num_shards): none of the failed shard 0's
  // ids may leak into the degraded answer, and every full-answer neighbor
  // owned by a surviving shard must still be found by the merge.
  for (const Neighbor& n : degraded.neighbors) {
    EXPECT_NE(n.second % 3, 0u) << "id from the failed shard leaked";
  }
  for (const Neighbor& ref : full.neighbors) {
    if (ref.second % 3 == 0) continue;
    bool found = false;
    for (const Neighbor& n : degraded.neighbors) {
      if (n.second == ref.second && n.first == ref.first) {
        found = true;
        break;
      }
    }
    EXPECT_TRUE(found) << "surviving id " << ref.second << " lost from merge";
  }

  // All shards failing is a hard error, not a silent empty answer.
  fail::Configure("sharded.search_shard", fail::Mode::kAlways);
  const SearchResponse dead = index.Search(Request(query_, 0));
  EXPECT_FALSE(dead.ok());
  EXPECT_EQ(dead.shards_ok, 0u);
  EXPECT_EQ(dead.shards_failed, 3u);
  EXPECT_TRUE(dead.neighbors.empty());
}

// The engine counts isolated shard failures and partial responses in its
// serving stats while still answering the query.
TEST_F(FaultInjectionTest, EngineCountsIsolatedShardFailure) {
  ShardedConfig config;
  config.num_shards = 3;
  config.ivf.num_lists = 8;
  ShardedIndex index;
  ASSERT_TRUE(index.Build(data_, config).ok());
  SearchEngine engine(std::move(index));

  fail::Configure("sharded.search_shard", fail::Mode::kOnce);
  const SearchResponse response = engine.Search(Request(query_, 0));
  EXPECT_TRUE(response.ok()) << response.status.message();
  EXPECT_TRUE(response.partial);
  EXPECT_EQ(response.shards_failed, 1u);
  EXPECT_FALSE(response.neighbors.empty());

  const EngineStatsSnapshot stats = engine.Stats();
  EXPECT_EQ(stats.shard_failures, 1u);
  EXPECT_GE(stats.partial_responses, 1u);
}

// An injected admission failure behaves exactly like a real full queue:
// immediate kResourceExhausted, counted, and recovery after the fault.
TEST_F(FaultInjectionTest, QueuePushFaultRejectsSubmission) {
  SearchEngine engine(BuildIndex(data_, 8));

  fail::Configure("engine.queue_push", fail::Mode::kAlways);
  const SearchResponse rejected = engine.SubmitAsync(Request(query_, 0)).get();
  EXPECT_EQ(rejected.status.code(), StatusCode::kResourceExhausted);
  fail::Clear("engine.queue_push");

  const SearchResponse served = engine.SubmitAsync(Request(query_, 0)).get();
  EXPECT_TRUE(served.ok()) << served.status.message();
  EXPECT_FALSE(served.neighbors.empty());
  EXPECT_EQ(engine.Stats().queries_rejected, 1u);
}

// Forcing the scan-loop deadline check simulates running out of budget
// mid-scan without depending on wall-clock timing: the query stops early
// and reports partial results.
TEST_F(FaultInjectionTest, ScanDeadlineFaultForcesPartialResults) {
  IvfRabitqIndex index = BuildIndex(data_, 8);
  const SearchResponse full = index.Search(Request(query_, 0));
  ASSERT_TRUE(full.ok());

  // Fires before the first probe: nothing scanned, empty partial answer.
  fail::Configure("ivf.scan_deadline", fail::Mode::kAlways);
  const SearchResponse stopped = index.Search(Request(query_, 0));
  EXPECT_EQ(stopped.status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_TRUE(stopped.partial);
  EXPECT_TRUE(stopped.neighbors.empty());
  EXPECT_EQ(stopped.stats.lists_probed, 0u);

  // Fires before the third probe: two lists' worth of partial results.
  fail::Configure("ivf.scan_deadline", fail::Mode::kOnce, 3);
  const SearchResponse partway = index.Search(Request(query_, 0));
  EXPECT_EQ(partway.status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_TRUE(partway.partial);
  EXPECT_EQ(partway.stats.lists_probed, 2u);
  EXPECT_LE(partway.neighbors.size(), full.neighbors.size());
  for (std::size_t i = 1; i < partway.neighbors.size(); ++i) {
    EXPECT_LE(partway.neighbors[i - 1].first, partway.neighbors[i].first);
  }
}

}  // namespace
}  // namespace rabitq
