// Multi-bit RaBitQ codes (bits_per_dim in {2, 4, 8}) and the two-stage
// error-bound scan:
//   * the sign plane of a multi-bit code is bit-identical to the 1-bit code
//     of the same vector (the sign-split grid guarantee), so stage 1 of the
//     scan is unchanged for any width;
//   * the multi-bit block kernels (AccumulateMultiBlockSums +
//     EstimateBlockMultiPruned) are bit-identical to the scalar reference
//     and to the single-code EstimateDistanceMulti path, candidate-mask
//     pruning semantics included;
//   * the per-code grid factors satisfy their defining identities
//     (reconstruction is unit-norm, m_o_o = <x-bar, o'>, the Eq. 16
//     half-width shrinks as the grid refines);
//   * the two-stage kErrorBound scan is element-identical to the brute-force
//     oracle at every width under kL2 and kInnerProduct, on both estimator
//     paths, and the batch/non-batch paths agree away from exhaustive
//     settings too;
//   * the multi-bit payload survives snapshot v4, Add/Delete/compaction, and
//     sharded + engine serving (including the codes_refined telemetry).

#include <gtest/gtest.h>

#include <algorithm>
#include <cfloat>
#include <cmath>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "core/estimator.h"
#include "core/query.h"
#include "core/rabitq.h"
#include "engine/search_engine.h"
#include "index/brute_force.h"
#include "index/ivf.h"
#include "index/sharded.h"
#include "quant/fastscan.h"
#include "util/bit_ops.h"
#include "util/prng.h"

namespace rabitq {
namespace {

constexpr std::size_t kWidths[] = {2, 4, 8};

std::vector<float> RandomVec(std::size_t dim, Rng* rng, float scale = 1.0f) {
  std::vector<float> v(dim);
  for (auto& x : v) x = static_cast<float>(rng->Gaussian()) * scale;
  return v;
}

Matrix ClusteredData(std::size_t n, std::size_t dim, std::size_t clusters,
                     std::uint64_t seed) {
  Rng rng(seed);
  Matrix centers(clusters, dim);
  for (std::size_t i = 0; i < centers.size(); ++i) {
    centers.data()[i] = static_cast<float>(rng.Gaussian()) * 8.0f;
  }
  Matrix data(n, dim);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t c = rng.UniformInt(clusters);
    for (std::size_t j = 0; j < dim; ++j) {
      data.At(i, j) = centers.At(c, j) + static_cast<float>(rng.Gaussian());
    }
  }
  return data;
}

void ExpectSameNeighbors(const std::vector<Neighbor>& want,
                         const std::vector<Neighbor>& got,
                         const std::string& label) {
  ASSERT_EQ(want.size(), got.size()) << label;
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(want[i].second, got[i].second) << label << " pos " << i;
    EXPECT_EQ(want[i].first, got[i].first) << label << " pos " << i;
  }
}

// Brute-force oracle over an allowed subset (all rows when mask is empty).
std::vector<Neighbor> OracleAllowed(const Matrix& data, const float* query,
                                    std::size_t k, Metric metric,
                                    const std::vector<bool>& allowed) {
  const std::vector<Neighbor> full =
      BruteForceSearch(data, query, data.rows(), metric);
  std::vector<Neighbor> out;
  for (const Neighbor& nb : full) {
    if (allowed.empty() || allowed[nb.second]) out.push_back(nb);
    if (out.size() == k) break;
  }
  return out;
}

struct Workload {
  RabitqEncoder encoder;
  RabitqCodeStore store;
  Matrix queries;
  std::vector<float> centroid;
};

// n codes against a random centroid; code 0 is planted at the centroid
// itself (the zero-residual degenerate code) whenever n > 2.
void BuildWorkload(std::size_t dim, std::size_t n, std::size_t n_queries,
                   std::size_t bits_per_dim, std::uint64_t seed, Workload* w) {
  Rng rng(seed);
  RabitqConfig config;
  config.bits_per_dim = bits_per_dim;
  config.seed = seed * 31 + 7;
  ASSERT_TRUE(w->encoder.Init(dim, config).ok());
  w->store.Init(w->encoder.total_bits(), Metric::kL2, bits_per_dim);
  w->centroid = RandomVec(dim, &rng, 0.5f);
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<float> v =
        (i == 0 && n > 2) ? w->centroid : RandomVec(dim, &rng);
    ASSERT_TRUE(
        w->encoder.EncodeAppend(v.data(), w->centroid.data(), &w->store).ok());
  }
  w->store.Finalize();
  w->queries.Reset(n_queries, dim);
  for (std::size_t q = 0; q < n_queries; ++q) {
    const auto v = RandomVec(dim, &rng);
    std::copy_n(v.data(), dim, w->queries.Row(q));
  }
}

TEST(MultibitTest, EncoderRejectsInvalidWidths) {
  for (const std::size_t bad : {std::size_t{0}, std::size_t{3}, std::size_t{5},
                                std::size_t{6}, std::size_t{16}}) {
    RabitqEncoder enc;
    RabitqConfig config;
    config.bits_per_dim = bad;
    const Status status = enc.Init(24, config);
    EXPECT_EQ(status.code(), StatusCode::kInvalidArgument) << bad;
  }
  // Encoder/store width agreement is enforced at append time.
  RabitqEncoder enc;
  RabitqConfig config;
  config.bits_per_dim = 4;
  ASSERT_TRUE(enc.Init(24, config).ok());
  RabitqCodeStore narrow(enc.total_bits());  // bits_per_dim = 1
  std::vector<float> v(24, 1.0f);
  EXPECT_EQ(enc.EncodeAppend(v.data(), nullptr, &narrow).code(),
            StatusCode::kFailedPrecondition);
}

// The sign-split grid guarantee: a multi-bit code's sign plane (bits_) and
// every 1-bit scalar riding with it are bit-identical to the 1-bit code of
// the same vector under the same rotator, and the MSB of each
// reconstructed level u_i IS the sign bit.
TEST(MultibitTest, SignPlaneIdenticalToOneBitCode) {
  const std::size_t dim = 48, n = 40;
  for (const std::size_t bits : kWidths) {
    Workload one, multi;
    BuildWorkload(dim, n, 1, 1, 77, &one);
    BuildWorkload(dim, n, 1, bits, 77, &multi);
    ASSERT_EQ(one.store.size(), multi.store.size());
    ASSERT_EQ(multi.store.bits_per_dim(), bits);
    const std::size_t words = one.store.words_per_code();
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t wd = 0; wd < words; ++wd) {
        ASSERT_EQ(one.store.BitsAt(i)[wd], multi.store.BitsAt(i)[wd])
            << "B " << bits << " code " << i << " word " << wd;
      }
      EXPECT_EQ(one.store.bit_count(i), multi.store.bit_count(i));
      EXPECT_EQ(one.store.dist_to_centroid(i), multi.store.dist_to_centroid(i));
      EXPECT_EQ(one.store.o_o(i), multi.store.o_o(i));
      // MSB-plane identity at the level granularity.
      const std::size_t b = multi.store.total_bits();
      for (std::size_t d = 0; d < b; ++d) {
        std::uint32_t u = GetBit(multi.store.BitsAt(i), d) ? 1u : 0u;
        u <<= bits - 1;
        for (std::size_t j = 0; j + 1 < bits; ++j) {
          const std::uint64_t* plane =
              multi.store.ExtraPlanesAt(i) + j * words;
          if (GetBit(plane, d)) u |= 1u << j;
        }
        EXPECT_EQ(u >> (bits - 1), GetBit(multi.store.BitsAt(i), d) ? 1u : 0u);
      }
    }
  }
}

// The per-code grid factors satisfy their defining identities against an
// independent reconstruction from the stored planes and the rotator.
TEST(MultibitTest, GridFactorsMatchReconstruction) {
  const std::size_t dim = 40, n = 30;
  Rng data_rng(11);
  const std::vector<float> centroid = RandomVec(dim, &data_rng, 0.5f);
  std::vector<std::vector<float>> vecs;
  for (std::size_t i = 0; i < n; ++i) vecs.push_back(RandomVec(dim, &data_rng));

  double prev_mean_err = 1e30;
  for (const std::size_t bits : kWidths) {
    RabitqEncoder enc;
    RabitqConfig config;
    config.bits_per_dim = bits;
    config.seed = 99;
    ASSERT_TRUE(enc.Init(dim, config).ok());
    RabitqCodeStore store(0);
    store.Init(enc.total_bits(), Metric::kL2, bits);
    for (const auto& v : vecs) {
      ASSERT_TRUE(enc.EncodeAppend(v.data(), centroid.data(), &store).ok());
    }
    const std::size_t b = store.total_bits();
    const std::size_t words = store.words_per_code();
    double mean_err = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      // Rotated unit residual o' of the original vector.
      std::vector<float> residual(dim), rotated(b);
      for (std::size_t d = 0; d < dim; ++d) {
        residual[d] = vecs[i][d] - centroid[d];
      }
      float norm = 0.0f;
      for (const float x : residual) norm += x * x;
      norm = std::sqrt(norm);
      for (auto& x : residual) x /= norm;
      enc.rotator().InverseRotate(residual.data(), rotated.data());

      const float alpha = store.m_alpha(i);
      const float beta = store.m_beta(i);
      double code_sum = 0.0, norm_sq = 0.0, dot = 0.0;
      for (std::size_t d = 0; d < b; ++d) {
        std::uint32_t u = GetBit(store.BitsAt(i), d) ? 1u : 0u;
        u <<= bits - 1;
        for (std::size_t j = 0; j + 1 < bits; ++j) {
          if (GetBit(store.ExtraPlanesAt(i) + j * words, d)) u |= 1u << j;
        }
        code_sum += u;
        // x-bar_d = alpha * u_d + beta, the affine form the estimator uses.
        const double xb = static_cast<double>(alpha) * u + beta;
        norm_sq += xb * xb;
        dot += xb * static_cast<double>(rotated[d]);
      }
      EXPECT_EQ(store.m_code_sum(i), static_cast<float>(code_sum))
          << "B " << bits << " code " << i;
      EXPECT_NEAR(norm_sq, 1.0, 1e-4) << "B " << bits << " code " << i;
      EXPECT_NEAR(store.m_o_o(i), dot, 1e-4) << "B " << bits << " code " << i;
      EXPECT_LE(store.m_o_o(i), 1.0f + 1e-5f);
      mean_err += store.m_err_data()[i];
    }
    mean_err /= static_cast<double>(n);
    // Refining the grid tightens the Eq. 16 half-width on average.
    EXPECT_LT(mean_err, prev_mean_err) << "B " << bits;
    prev_mean_err = mean_err;
  }
}

// The multi-bit block kernels: AccumulateMultiBlockSums equals the per-code
// BitwiseDotQueryMulti, and the pruned SIMD kernel is bit-identical to its
// scalar reference and the single-code assembly, candidate-mask semantics
// included (non-candidate lanes never survive, candidate lanes follow the
// scalar !(lb > thr) rule exactly).
TEST(MultibitTest, BlockKernelsBitIdenticalToScalarAndSingleCode) {
  const struct {
    std::size_t dim, n;
  } shapes[] = {{50, 90}, {100, 64}, {40, 33}};
  for (const std::size_t bits : kWidths) {
    for (const auto& shape : shapes) {
      Workload w;
      BuildWorkload(shape.dim, shape.n, 2, bits, shape.dim * 100 + bits, &w);
      Rng rng(bits * 7 + shape.n);
      Rng mask_rng(bits * 13 + 5);
      for (std::size_t q = 0; q < w.queries.rows() + 1; ++q) {
        // Last pass queries the centroid itself (q_dist == 0 edge).
        const float* query = q < w.queries.rows() ? w.queries.Row(q)
                                                  : w.centroid.data();
        QuantizedQuery qq;
        ASSERT_TRUE(
            PrepareQuery(w.encoder, query, w.centroid.data(), &rng, &qq).ok());
        const FastScanCodes& packed = w.store.packed();
        std::uint32_t sums[kFastScanBlockSize];
        std::uint32_t msums[kFastScanBlockSize];
        for (std::size_t block = 0; block < packed.num_blocks; ++block) {
          FastScanAccumulateBlock(packed.BlockPtr(block), packed.num_segments,
                                  qq.luts.data(), sums);
          AccumulateMultiBlockSums(qq, w.store, block, sums, msums);
          const std::size_t begin = block * kFastScanBlockSize;
          const std::size_t count =
              std::min(kFastScanBlockSize, w.store.size() - begin);
          for (std::size_t k = 0; k < count; ++k) {
            ASSERT_EQ(msums[k], BitwiseDotQueryMulti(qq, w.store, begin + k))
                << "block " << block << " lane " << k;
          }
          // Reference distances/bounds from the single-code path.
          float ref_d[kFastScanBlockSize], ref_lb[kFastScanBlockSize];
          for (std::size_t k = 0; k < count; ++k) {
            const DistanceEstimate single =
                EstimateDistanceMulti(qq, w.store, begin + k, 1.9f);
            ref_d[k] = single.dist_sq;
            ref_lb[k] = single.lower_bound_sq;
          }
          const float lo = *std::min_element(ref_lb, ref_lb + count);
          const float hi = *std::max_element(ref_lb, ref_lb + count);
          const float thresholds[] = {lo, (lo + hi) / 2, hi, FLT_MAX};
          for (const float thr : thresholds) {
            // Random candidate masks, plus the all-candidates mask.
            for (int pass = 0; pass < 3; ++pass) {
              const std::uint32_t cand =
                  pass == 0 ? 0xFFFFFFFFu
                            : static_cast<std::uint32_t>(
                                  mask_rng.NextU64() & 0xFFFFFFFFu);
              float fd[kFastScanBlockSize], flb[kFastScanBlockSize];
              float sd[kFastScanBlockSize], slb[kFastScanBlockSize];
              const std::uint32_t fused = EstimateBlockMultiPruned(
                  qq, w.store, block, msums, 1.9f, thr, cand, fd, flb);
              const std::uint32_t scalar = EstimateBlockMultiPrunedScalar(
                  qq, w.store, block, msums, 1.9f, thr, cand, sd, slb);
              ASSERT_EQ(fused, scalar)
                  << "block " << block << " thr " << thr << " cand " << cand;
              EXPECT_EQ(fused & ~cand, 0u) << "non-candidate lane survived";
              for (std::size_t k = 0; k < kFastScanBlockSize; ++k) {
                const bool is_cand = ((cand >> k) & 1u) != 0;
                const bool expect_survive =
                    k < count && is_cand && !(ref_lb[k] > thr);
                EXPECT_EQ((fused >> k) & 1u, expect_survive ? 1u : 0u)
                    << "block " << block << " lane " << k << " thr " << thr;
                if (k < count && is_cand) {
                  ASSERT_EQ(fd[k], ref_d[k]) << "lane " << k;
                  ASSERT_EQ(flb[k], ref_lb[k]) << "lane " << k;
                  ASSERT_EQ(sd[k], ref_d[k]) << "lane " << k;
                  ASSERT_EQ(slb[k], ref_lb[k]) << "lane " << k;
                }
              }
            }
          }
        }
      }
    }
  }
}

class MultibitSearchTest : public ::testing::Test {
 protected:
  static constexpr std::size_t kN = 900;
  static constexpr std::size_t kDim = 24;
  static constexpr std::size_t kLists = 10;
  static constexpr std::size_t kNumQueries = 6;
  static constexpr std::size_t kK = 10;

  void SetUp() override {
    data_ = ClusteredData(kN, kDim, 10, 421);
    queries_ = ClusteredData(kNumQueries, kDim, 10, 422);
  }

  IvfRabitqIndex BuildSingle(Metric metric, std::size_t bits) const {
    IvfRabitqIndex index;
    IvfConfig ivf;
    ivf.num_lists = kLists;
    ivf.metric = metric;
    RabitqConfig rabitq;
    rabitq.bits_per_dim = bits;
    EXPECT_TRUE(index.Build(data_, ivf, rabitq).ok());
    return index;
  }

  // Exhaustive exact settings: full probe, never prune.
  static IvfSearchParams ExhaustiveParams() {
    IvfSearchParams params;
    params.k = kK;
    params.nprobe = kLists;
    params.epsilon0_override = 50.0f;
    params.policy = RerankPolicy::kErrorBound;
    params.rerank_candidates = kN;
    return params;
  }

  Matrix data_;
  Matrix queries_;
};

// The tentpole acceptance criterion: the two-stage kErrorBound scan is
// element-identical to the brute-force oracle at every width, under kL2 and
// kInnerProduct, on both estimator paths -- and the codes_refined telemetry
// fires exactly when a second stage exists.
TEST_F(MultibitSearchTest, TwoStageScanMatchesOracleAcrossWidths) {
  for (const Metric metric : {Metric::kL2, Metric::kInnerProduct}) {
    for (const std::size_t bits :
         {std::size_t{1}, std::size_t{2}, std::size_t{4}, std::size_t{8}}) {
      const IvfRabitqIndex index = BuildSingle(metric, bits);
      ASSERT_EQ(index.encoder().config().bits_per_dim, bits);
      for (std::size_t q = 0; q < kNumQueries; ++q) {
        const std::vector<Neighbor> oracle =
            OracleAllowed(data_, queries_.Row(q), kK, metric, {});
        for (const bool batch : {true, false}) {
          IvfSearchParams params = ExhaustiveParams();
          params.use_batch_estimator = batch;
          std::vector<Neighbor> got;
          IvfSearchStats stats;
          ASSERT_TRUE(
              index.Search(queries_.Row(q), params, 600 + q, &got, &stats)
                  .ok());
          const std::string label = std::string(MetricName(metric)) + " B" +
                                    std::to_string(bits) +
                                    (batch ? " batch" : " scalar") + " q" +
                                    std::to_string(q);
          ExpectSameNeighbors(oracle, got, label);
          if (bits > 1) {
            EXPECT_GT(stats.codes_refined, 0u) << label;
          } else {
            EXPECT_EQ(stats.codes_refined, 0u) << label;
          }
        }
      }
    }
  }
}

// Away from exhaustive settings the batch and non-batch paths still return
// identical results at every width (the snapshot-threshold pruning of the
// fused stage-2 kernel is consistent with the walk's live recheck), and the
// estimate-only policies rank by the full-width estimate on both paths.
TEST_F(MultibitSearchTest, BatchAndNonBatchAgreeAtPartialProbe) {
  for (const std::size_t bits : kWidths) {
    const IvfRabitqIndex index = BuildSingle(Metric::kL2, bits);
    IvfSearchParams batch;
    batch.k = kK;
    batch.nprobe = 4;
    batch.policy = RerankPolicy::kErrorBound;
    IvfSearchParams scalar = batch;
    scalar.use_batch_estimator = false;
    for (std::size_t q = 0; q < kNumQueries; ++q) {
      std::vector<Neighbor> batch_out, scalar_out;
      ASSERT_TRUE(
          index.Search(queries_.Row(q), batch, 700 + q, &batch_out).ok());
      ASSERT_TRUE(
          index.Search(queries_.Row(q), scalar, 700 + q, &scalar_out).ok());
      ExpectSameNeighbors(scalar_out, batch_out,
                          "partial-probe B" + std::to_string(bits));
    }
    // kFixedCandidates / kNone rank their pools by the full B_d-bit
    // estimate (every scanned code is refined -- the estimate must stand
    // in for the exact distance there), and batch / non-batch still agree.
    for (const RerankPolicy policy :
         {RerankPolicy::kFixedCandidates, RerankPolicy::kNone}) {
      IvfSearchParams params = batch;
      params.policy = policy;
      params.rerank_candidates = 40;
      IvfSearchParams params_scalar = params;
      params_scalar.use_batch_estimator = false;
      for (std::size_t q = 0; q < kNumQueries; ++q) {
        std::vector<Neighbor> batch_out, scalar_out;
        IvfSearchStats stats;
        ASSERT_TRUE(
            index.Search(queries_.Row(q), params, 711 + q, &batch_out, &stats)
                .ok());
        ASSERT_TRUE(index.Search(queries_.Row(q), params_scalar, 711 + q,
                                 &scalar_out)
                        .ok());
        ExpectSameNeighbors(scalar_out, batch_out,
                            "pool policy B" + std::to_string(bits));
        EXPECT_EQ(stats.codes_refined, stats.codes_estimated);
      }
    }
  }
}

// Snapshots carry the multi-bit payload: bits_per_dim, the extra code
// planes and the persisted grid factors all round-trip bitwise (through the
// current v5 checksummed format), and post-load search is bit-identical.
TEST_F(MultibitSearchTest, SnapshotV4RoundTripsMultiBitPayload) {
  const IvfRabitqIndex index = BuildSingle(Metric::kInnerProduct, 4);
  const std::string path = ::testing::TempDir() + "/multibit_v4.rbq";
  ASSERT_TRUE(index.Save(path).ok());
  {
    std::ifstream in(path, std::ios::binary);
    char magic[8] = {};
    in.read(magic, 8);
    EXPECT_EQ(std::string(magic, 8), "RBQIVF05");
  }
  IvfRabitqIndex loaded;
  ASSERT_TRUE(loaded.Load(path).ok());
  EXPECT_EQ(loaded.metric(), Metric::kInnerProduct);
  ASSERT_EQ(loaded.encoder().config().bits_per_dim, 4u);
  ASSERT_EQ(loaded.num_lists(), index.num_lists());
  for (std::size_t l = 0; l < index.num_lists(); ++l) {
    const RabitqCodeStore& a = index.list_codes(l);
    const RabitqCodeStore& b = loaded.list_codes(l);
    ASSERT_EQ(a.size(), b.size());
    ASSERT_EQ(b.bits_per_dim(), 4u);
    for (std::size_t i = 0; i < a.size(); ++i) {
      for (std::size_t wd = 0; wd < a.extra_words_per_code(); ++wd) {
        ASSERT_EQ(a.ExtraPlanesAt(i)[wd], b.ExtraPlanesAt(i)[wd])
            << "list " << l << " code " << i << " word " << wd;
      }
      EXPECT_EQ(a.m_o_o(i), b.m_o_o(i));
      EXPECT_EQ(a.m_alpha(i), b.m_alpha(i));
      EXPECT_EQ(a.m_beta(i), b.m_beta(i));
      EXPECT_EQ(a.m_code_sum(i), b.m_code_sum(i));
      // Derived factors are recomputed from the same floats -- identical.
      EXPECT_EQ(a.m_inv_oo_data()[i], b.m_inv_oo_data()[i]);
      EXPECT_EQ(a.m_err_data()[i], b.m_err_data()[i]);
    }
  }
  for (std::size_t q = 0; q < kNumQueries; ++q) {
    for (const bool batch : {true, false}) {
      IvfSearchParams params = ExhaustiveParams();
      params.use_batch_estimator = batch;
      std::vector<Neighbor> want, got;
      ASSERT_TRUE(index.Search(queries_.Row(q), params, 800 + q, &want).ok());
      ASSERT_TRUE(loaded.Search(queries_.Row(q), params, 800 + q, &got).ok());
      ExpectSameNeighbors(want, got, "v4 round trip");
    }
  }
  std::filesystem::remove(path);
}

// The mutable lifecycle at a multi-bit width: Add (incremental fast-scan
// repack of every plane), Delete, compaction -- the index still reproduces
// the oracle over the live set afterwards.
TEST_F(MultibitSearchTest, LifecycleKeepsMultiBitPayloadConsistent) {
  IvfRabitqIndex index = BuildSingle(Metric::kL2, 4);
  Matrix all = ClusteredData(kN + 50, kDim, 10, 421);
  std::copy_n(data_.data(), data_.size(), all.data());
  Rng extra_rng(31);
  for (std::size_t i = 0; i < 50; ++i) {
    const std::size_t c = extra_rng.UniformInt(kN);
    for (std::size_t j = 0; j < kDim; ++j) {
      all.At(kN + i, j) =
          data_.At(c, j) + 0.25f * static_cast<float>(extra_rng.Gaussian());
    }
    std::uint32_t id = 0;
    ASSERT_TRUE(index.Add(all.Row(kN + i), &id).ok());
    ASSERT_EQ(id, kN + i);
  }
  std::vector<bool> allowed(kN + 50, true);
  for (std::size_t id = 0; id < kN + 50; id += 7) {
    ASSERT_TRUE(index.Delete(static_cast<std::uint32_t>(id)).ok());
    allowed[id] = false;
  }
  ASSERT_TRUE(index.Compact().ok());
  EXPECT_EQ(index.num_tombstones(), 0u);
  for (std::size_t l = 0; l < index.num_lists(); ++l) {
    EXPECT_EQ(index.list_codes(l).bits_per_dim(), 4u);
  }
  for (std::size_t q = 0; q < kNumQueries; ++q) {
    const std::vector<Neighbor> oracle =
        OracleAllowed(all, queries_.Row(q), kK, Metric::kL2, allowed);
    for (const bool batch : {true, false}) {
      IvfSearchParams params = ExhaustiveParams();
      params.use_batch_estimator = batch;
      std::vector<Neighbor> got;
      ASSERT_TRUE(index.Search(queries_.Row(q), params, 900 + q, &got).ok());
      ExpectSameNeighbors(oracle, got, "lifecycle B4");
    }
  }
}

// Sharded scatter-gather and the serving engine thread the width through:
// shard results stay bit-identical to single-shard, the engine reports the
// width and counts stage-2 refinements.
TEST_F(MultibitSearchTest, ShardedAndEngineServeMultiBit) {
  ShardedConfig config;
  config.num_shards = 3;
  config.clustering = ShardClustering::kShared;
  config.ivf.num_lists = kLists;
  config.ivf.metric = Metric::kL2;
  config.rabitq.bits_per_dim = 4;
  ShardedIndex sharded;
  ASSERT_TRUE(sharded.Build(data_, config).ok());
  const IvfRabitqIndex single = BuildSingle(Metric::kL2, 4);

  IvfSearchParams params;
  params.k = kK;
  params.nprobe = 5;
  params.policy = RerankPolicy::kErrorBound;
  // Widened eps0 keeps the kErrorBound shard merge bit-identical (shards
  // prune against weaker per-shard thresholds; see sharded.h).
  params.epsilon0_override = 8.0f;
  std::vector<std::vector<Neighbor>> want(kNumQueries);
  for (std::size_t q = 0; q < kNumQueries; ++q) {
    std::vector<Neighbor> got;
    IvfSearchStats stats;
    ASSERT_TRUE(
        single.Search(queries_.Row(q), params, 1000 + q, &want[q]).ok());
    ASSERT_TRUE(
        sharded.Search(queries_.Row(q), params, 1000 + q, &got, &stats).ok());
    ExpectSameNeighbors(want[q], got, "sharded B4");
    EXPECT_GT(stats.codes_refined, 0u) << "merged stats drop refinements";
  }

  EngineConfig engine_config;
  engine_config.num_threads = 2;
  SearchEngine engine(std::move(sharded), engine_config);
  EXPECT_EQ(engine.bits_per_dim(), 4u);
  std::vector<SearchRequest> requests(kNumQueries);
  SearchOptions options;
  options.k = kK;
  options.nprobe = 5;
  options.epsilon0_override = 8.0f;
  for (std::size_t q = 0; q < kNumQueries; ++q) {
    requests[q] = {queries_.Row(q), options};
    requests[q].options.seed = 1000 + q;
  }
  std::vector<SearchResponse> responses;
  ASSERT_TRUE(
      engine.SearchBatch(requests.data(), requests.size(), &responses).ok());
  for (std::size_t q = 0; q < kNumQueries; ++q) {
    ASSERT_TRUE(responses[q].ok()) << responses[q].status.message();
    ExpectSameNeighbors(want[q], responses[q].neighbors, "engine B4");
  }
  EXPECT_GT(engine.Stats().codes_refined, 0u);
}

}  // namespace
}  // namespace rabitq
