// Tests for evaluation metrics: relative-error accumulation, recall,
// average distance ratio, linear regression, ground truth, table printing.

#include <gtest/gtest.h>

#include <cmath>

#include "eval/ground_truth.h"
#include "eval/metrics.h"
#include "util/prng.h"

namespace rabitq {
namespace {

TEST(RelativeErrorTest, AverageAndMax) {
  RelativeErrorAccumulator acc;
  acc.Add(110.0, 100.0);  // 10%
  acc.Add(80.0, 100.0);   // 20%
  acc.Add(100.0, 100.0);  // 0%
  const RelativeErrorStats stats = acc.Stats();
  EXPECT_EQ(stats.count, 3u);
  EXPECT_NEAR(stats.average, 0.1, 1e-12);
  EXPECT_NEAR(stats.maximum, 0.2, 1e-12);
}

TEST(RelativeErrorTest, SkipsNearZeroTruth) {
  RelativeErrorAccumulator acc;
  acc.Add(5.0, 0.0);
  acc.Add(5.0, 1e-15);
  EXPECT_EQ(acc.Stats().count, 0u);
}

TEST(GroundTruthTest, ExactNeighborsOnKnownData) {
  // Points on a line: neighbors of query x=2.1 are 2, 3, 1 in that order.
  Matrix base(5, 1);
  for (std::size_t i = 0; i < 5; ++i) base.At(i, 0) = static_cast<float>(i);
  Matrix queries(1, 1);
  queries.At(0, 0) = 2.1f;
  GroundTruth gt;
  ASSERT_TRUE(ComputeGroundTruth(base, queries, 3, &gt).ok());
  EXPECT_EQ(gt.IdsFor(0)[0], 2u);
  EXPECT_EQ(gt.IdsFor(0)[1], 3u);
  EXPECT_EQ(gt.IdsFor(0)[2], 1u);
  EXPECT_NEAR(gt.DistFor(0)[0], 0.01f, 1e-5f);
}

TEST(GroundTruthTest, KClampedToBaseSize) {
  Matrix base(3, 2), queries(2, 2);
  GroundTruth gt;
  ASSERT_TRUE(ComputeGroundTruth(base, queries, 10, &gt).ok());
  EXPECT_EQ(gt.k, 3u);
}

TEST(GroundTruthTest, RejectsMismatchedDims) {
  Matrix base(3, 2), queries(2, 3);
  GroundTruth gt;
  EXPECT_FALSE(ComputeGroundTruth(base, queries, 1, &gt).ok());
}

TEST(RecallTest, CountsIntersection) {
  GroundTruth gt;
  gt.k = 4;
  gt.ids = {1, 2, 3, 4};
  gt.dist_sq = {1.0f, 2.0f, 3.0f, 4.0f};
  std::vector<Neighbor> result = {{1.0f, 1}, {2.5f, 9}, {3.0f, 3}, {5.0f, 8}};
  EXPECT_NEAR(RecallAtK(gt, 0, result, 4), 0.5, 1e-12);
  // Perfect result.
  result = {{1.0f, 4}, {2.0f, 3}, {3.0f, 2}, {4.0f, 1}};
  EXPECT_NEAR(RecallAtK(gt, 0, result, 4), 1.0, 1e-12);
  // Empty result.
  EXPECT_NEAR(RecallAtK(gt, 0, {}, 4), 0.0, 1e-12);
}

TEST(DistanceRatioTest, PerfectResultIsOne) {
  GroundTruth gt;
  gt.k = 2;
  gt.ids = {0, 1};
  gt.dist_sq = {4.0f, 9.0f};
  std::vector<Neighbor> result = {{4.0f, 0}, {9.0f, 1}};
  EXPECT_NEAR(AverageDistanceRatio(gt, 0, result, 2), 1.0, 1e-6);
}

TEST(DistanceRatioTest, WorseResultExceedsOne) {
  GroundTruth gt;
  gt.k = 2;
  gt.ids = {0, 1};
  gt.dist_sq = {4.0f, 9.0f};
  std::vector<Neighbor> result = {{9.0f, 5}, {16.0f, 6}};
  // sqrt ratios: 3/2 and 4/3 -> mean ~1.4167.
  EXPECT_NEAR(AverageDistanceRatio(gt, 0, result, 2), (1.5 + 4.0 / 3.0) / 2,
              1e-6);
}

TEST(DistanceRatioTest, MissingEntriesPenalized) {
  GroundTruth gt;
  gt.k = 2;
  gt.ids = {0, 1};
  gt.dist_sq = {4.0f, 9.0f};
  std::vector<Neighbor> result = {{4.0f, 0}};  // only one returned
  // Second slot scored at the farthest true distance: 3/3 = 1.
  EXPECT_NEAR(AverageDistanceRatio(gt, 0, result, 2), 1.0, 1e-6);
}

TEST(LinearFitTest, RecoversExactLine) {
  std::vector<double> x = {0, 1, 2, 3, 4};
  std::vector<double> y = {1, 3, 5, 7, 9};  // y = 2x + 1
  const LinearFit fit = FitLinear(x, y);
  EXPECT_NEAR(fit.slope, 2.0, 1e-9);
  EXPECT_NEAR(fit.intercept, 1.0, 1e-9);
  EXPECT_NEAR(fit.r2, 1.0, 1e-9);
}

TEST(LinearFitTest, NoisyLineApproximatelyRecovered) {
  Rng rng(3);
  std::vector<double> x, y;
  for (int i = 0; i < 2000; ++i) {
    const double xi = rng.UniformDouble() * 10;
    x.push_back(xi);
    y.push_back(0.8 * xi + 0.1 * rng.Gaussian());
  }
  const LinearFit fit = FitLinear(x, y);
  EXPECT_NEAR(fit.slope, 0.8, 0.01);
  EXPECT_NEAR(fit.intercept, 0.0, 0.02);
  EXPECT_GT(fit.r2, 0.97);
}

TEST(LinearFitTest, DegenerateInputsReturnZero) {
  EXPECT_EQ(FitLinear({}, {}).slope, 0.0);
  EXPECT_EQ(FitLinear({1.0}, {2.0}).slope, 0.0);
  // Constant x: undefined slope -> 0.
  EXPECT_EQ(FitLinear({2.0, 2.0, 2.0}, {1.0, 2.0, 3.0}).slope, 0.0);
}

TEST(TablePrinterTest, FormatsDoubles) {
  EXPECT_EQ(TablePrinter::FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(TablePrinter::FormatDouble(1000.0, 0), "1000");
}

TEST(TablePrinterTest, PrintDoesNotCrash) {
  TablePrinter table({"name", "value"});
  table.AddRow({"alpha", "1.0"});
  table.AddRow({"beta-with-long-name", "2.000"});
  table.AddRow({"gamma"});  // short row tolerated
  table.Print();            // smoke: exercises the formatting path
  SUCCEED();
}

}  // namespace
}  // namespace rabitq
