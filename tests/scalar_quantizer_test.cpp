// Tests for scalar quantization: SQ8 range learning / round trips, and the
// randomized uniform quantizer's unbiasedness (the Eq. 18 property RaBitQ's
// query quantization rests on).

#include <gtest/gtest.h>

#include <cmath>

#include "quant/scalar_quantizer.h"
#include "util/prng.h"

namespace rabitq {
namespace {

TEST(ScalarQuantizer8Test, RoundTripWithinStep) {
  Rng rng(1);
  Matrix data(200, 16);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data.data()[i] = static_cast<float>(rng.Gaussian()) * 5.0f;
  }
  ScalarQuantizer8 sq;
  ASSERT_TRUE(sq.Train(data).ok());
  std::vector<std::uint8_t> code(16);
  std::vector<float> decoded(16);
  for (std::size_t i = 0; i < 20; ++i) {
    sq.Encode(data.Row(i), code.data());
    sq.Decode(code.data(), decoded.data());
    for (std::size_t j = 0; j < 16; ++j) {
      // Error bounded by one quantization step (range / 255).
      EXPECT_NEAR(decoded[j], data.At(i, j), 5.0f * 10.0f / 255.0f + 1e-4f);
    }
  }
}

TEST(ScalarQuantizer8Test, ConstantDimensionIsExact) {
  Matrix data(10, 2);
  for (std::size_t i = 0; i < 10; ++i) {
    data.At(i, 0) = 7.5f;                        // constant
    data.At(i, 1) = static_cast<float>(i);       // varying
  }
  ScalarQuantizer8 sq;
  ASSERT_TRUE(sq.Train(data).ok());
  std::uint8_t code[2];
  float decoded[2];
  sq.Encode(data.Row(3), code);
  sq.Decode(code, decoded);
  EXPECT_FLOAT_EQ(decoded[0], 7.5f);
}

TEST(ScalarQuantizer8Test, EstimateMatchesDecodedDistance) {
  Rng rng(2);
  Matrix data(100, 8);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data.data()[i] = static_cast<float>(rng.Gaussian());
  }
  ScalarQuantizer8 sq;
  ASSERT_TRUE(sq.Train(data).ok());
  std::vector<float> query(8, 0.25f);
  std::uint8_t code[8];
  float decoded[8];
  sq.Encode(data.Row(0), code);
  sq.Decode(code, decoded);
  float manual = 0.0f;
  for (int j = 0; j < 8; ++j) {
    manual += (query[j] - decoded[j]) * (query[j] - decoded[j]);
  }
  EXPECT_NEAR(sq.EstimateSquaredDistance(query.data(), code), manual, 1e-5f);
}

TEST(ScalarQuantizer8Test, RejectsEmptyTrainingData) {
  ScalarQuantizer8 sq;
  EXPECT_FALSE(sq.Train(Matrix()).ok());
}

class RandomizedQuantizeParamTest : public ::testing::TestWithParam<int> {};

TEST_P(RandomizedQuantizeParamTest, CodesStayInRange) {
  const int bits = GetParam();
  Rng rng(bits);
  std::vector<float> v(256);
  for (auto& x : v) x = static_cast<float>(rng.Gaussian());
  RandomizedQuantizedVector q;
  ASSERT_TRUE(RandomizedUniformQuantize(v.data(), v.size(), bits, &rng, &q).ok());
  const int max_level = (1 << bits) - 1;
  std::uint32_t sum = 0;
  for (const auto code : q.codes) {
    EXPECT_LE(code, max_level);
    sum += code;
  }
  EXPECT_EQ(sum, q.sum);
}

TEST_P(RandomizedQuantizeParamTest, ReconstructionErrorBoundedByStep) {
  const int bits = GetParam();
  Rng rng(bits + 100);
  std::vector<float> v(128);
  for (auto& x : v) x = static_cast<float>(rng.Gaussian());
  RandomizedQuantizedVector q;
  ASSERT_TRUE(RandomizedUniformQuantize(v.data(), v.size(), bits, &rng, &q).ok());
  for (std::size_t i = 0; i < v.size(); ++i) {
    const float recon = q.lo + q.step * static_cast<float>(q.codes[i]);
    EXPECT_NEAR(recon, v[i], q.step + 1e-6f);
  }
}

TEST_P(RandomizedQuantizeParamTest, RoundingIsUnbiased) {
  // Quantize the same vector many times with fresh randomness; the mean
  // reconstruction must converge to the true value (Eq. 18's property).
  const int bits = GetParam();
  Rng rng(42);
  std::vector<float> v(16);
  for (auto& x : v) x = static_cast<float>(rng.Gaussian());
  std::vector<double> mean(v.size(), 0.0);
  const int trials = 4000;
  for (int t = 0; t < trials; ++t) {
    RandomizedQuantizedVector q;
    ASSERT_TRUE(
        RandomizedUniformQuantize(v.data(), v.size(), bits, &rng, &q).ok());
    for (std::size_t i = 0; i < v.size(); ++i) {
      mean[i] += q.lo + q.step * static_cast<double>(q.codes[i]);
    }
  }
  // Tolerance scales with the step size (smaller for more bits) and the
  // Monte-Carlo noise.
  const float range = *std::max_element(v.begin(), v.end()) -
                      *std::min_element(v.begin(), v.end());
  const double step = range / ((1 << bits) - 1);
  for (std::size_t i = 0; i < v.size(); ++i) {
    EXPECT_NEAR(mean[i] / trials, v[i], 4.0 * step / std::sqrt(trials) + 1e-4);
  }
}

INSTANTIATE_TEST_SUITE_P(Bits, RandomizedQuantizeParamTest,
                         ::testing::Values(1, 2, 3, 4, 6, 8));

TEST(RandomizedQuantizeTest, ConstantVectorQuantizesToZeroLevels) {
  std::vector<float> v(32, 3.0f);
  Rng rng(1);
  RandomizedQuantizedVector q;
  ASSERT_TRUE(RandomizedUniformQuantize(v.data(), v.size(), 4, &rng, &q).ok());
  EXPECT_EQ(q.sum, 0u);
  EXPECT_FLOAT_EQ(q.lo, 3.0f);
  EXPECT_FLOAT_EQ(q.step, 0.0f);
}

TEST(RandomizedQuantizeTest, RejectsBadArguments) {
  std::vector<float> v(4, 1.0f);
  Rng rng(1);
  RandomizedQuantizedVector q;
  EXPECT_FALSE(RandomizedUniformQuantize(v.data(), 4, 0, &rng, &q).ok());
  EXPECT_FALSE(RandomizedUniformQuantize(v.data(), 4, 9, &rng, &q).ok());
  EXPECT_FALSE(RandomizedUniformQuantize(nullptr, 4, 4, &rng, &q).ok());
  EXPECT_FALSE(RandomizedUniformQuantize(v.data(), 0, 4, &rng, &q).ok());
}

}  // namespace
}  // namespace rabitq
