// Integration tests for the network server subsystem (src/server/): the
// wire path must be a TRANSPARENT carrier for engine semantics.
//
//   * Parity: with an explicit seed, a Search through the client is
//     bit-identical to SearchEngine::Search over an identically built index
//     -- across metrics (l2 / ip / cosine), shard counts and bitmap
//     filters. The server builds with ShardClustering::kShared for exactly
//     this property.
//   * Degradation crosses the wire: queued-deadline shedding arrives as a
//     kDeadlineExceeded protocol status with the partial flag set, and
//     (failpoint builds) an admission rejection arrives as
//     kResourceExhausted -- not as collapsed IO errors.
//   * Lifecycle over the wire: create/list/drop errors, snapshot -> drop ->
//     restore round-trips bit-identically, drain shuts the server down.
//   * Fault drills (RABITQ_FAILPOINTS builds): a torn response write fails
//     the client closed, an injected accept failure and a read fault are
//     survived, and a slow client is dropped by the io timeout -- all
//     without taking the server down.
//
// The concurrency test (many clients + a wire writer) is in the CI
// ThreadSanitizer job's regex.

#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "engine/search_engine.h"
#include "index/sharded.h"
#include "server/client.h"
#include "server/server.h"
#include "util/failpoint.h"
#include "util/prng.h"

namespace rabitq {
namespace server {
namespace {

Matrix ClusteredData(std::size_t n, std::size_t dim, std::size_t clusters,
                     std::uint64_t seed) {
  Rng rng(seed);
  Matrix centers(clusters, dim);
  for (std::size_t i = 0; i < centers.size(); ++i) {
    centers.data()[i] = static_cast<float>(rng.Gaussian()) * 8.0f;
  }
  Matrix data(n, dim);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t c = rng.UniformInt(clusters);
    for (std::size_t j = 0; j < dim; ++j) {
      data.At(i, j) = centers.At(c, j) + static_cast<float>(rng.Gaussian());
    }
  }
  return data;
}

void ExpectSameNeighbors(const std::vector<Neighbor>& a,
                         const std::vector<Neighbor>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].second, b[i].second) << "rank " << i;
    EXPECT_EQ(a[i].first, b[i].first) << "rank " << i;
  }
}

class ServerTest : public ::testing::Test {
 protected:
  static constexpr std::size_t kN = 2000;
  static constexpr std::size_t kDim = 24;
  static constexpr std::size_t kLists = 16;

  void SetUp() override {
    fail::ClearAll();
    data_ = ClusteredData(kN, kDim, 10, 7);
    queries_ = ClusteredData(16, kDim, 10, 8);
    root_ = (std::filesystem::temp_directory_path() /
             ("rabitq_server_test_" + std::to_string(::getpid()) + "_" +
              ::testing::UnitTest::GetInstance()->current_test_info()->name()))
                .string();
  }

  void TearDown() override {
    fail::ClearAll();
    std::error_code ec;
    std::filesystem::remove_all(root_, ec);
  }

  ServerConfig BaseConfig() const {
    ServerConfig config;
    config.port = 0;  // ephemeral: tests never race over a fixed port
    config.collections.root_dir = root_;
    return config;
  }

  WireCollectionSpec Spec(Metric metric, std::uint32_t shards) const {
    WireCollectionSpec spec;
    spec.dim = kDim;
    spec.metric = metric;
    spec.bits_per_dim = 1;
    spec.num_shards = shards;
    spec.num_lists = kLists;
    return spec;
  }

  /// The exact index CollectionManager::Create builds for `spec` -- the
  /// in-process half of every parity assertion.
  SearchEngine ReferenceEngine(const WireCollectionSpec& spec,
                               const EngineConfig& engine_config) const {
    ShardedConfig sharded;
    sharded.num_shards = spec.num_shards;
    sharded.clustering = ShardClustering::kShared;
    sharded.ivf.num_lists = spec.num_lists;
    sharded.ivf.metric = spec.metric;
    sharded.rabitq.bits_per_dim = spec.bits_per_dim;
    ShardedIndex index;
    EXPECT_TRUE(index.Build(data_, sharded).ok());
    return SearchEngine(std::move(index), engine_config);
  }

  SearchOptions SeededOptions(std::uint64_t seed) const {
    SearchOptions options;
    options.k = 10;
    options.nprobe = 8;
    options.seed = seed;
    return options;
  }

  Matrix data_;
  Matrix queries_;
  std::string root_;
};

// The headline contract: a seeded wire search returns byte-for-byte what the
// in-process engine returns, for every metric and for several shard counts.
TEST_F(ServerTest, WireSearchIsBitIdenticalToInProcess) {
  const ServerConfig config = BaseConfig();
  Server server(config);
  ASSERT_TRUE(server.Start().ok());
  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());

  const struct {
    Metric metric;
    std::uint32_t shards;
  } cases[] = {{Metric::kL2, 1},
               {Metric::kL2, 3},
               {Metric::kInnerProduct, 2},
               {Metric::kCosine, 2}};
  for (const auto& c : cases) {
    const std::string name = std::string("parity_") + MetricName(c.metric) +
                             "_" + std::to_string(c.shards);
    const WireCollectionSpec spec = Spec(c.metric, c.shards);
    ASSERT_TRUE(client.CreateCollection(name, spec, data_).ok()) << name;
    SearchEngine reference = ReferenceEngine(spec, config.collections.engine);

    for (std::size_t qi = 0; qi < 6; ++qi) {
      const SearchOptions options = SeededOptions(100 + qi);
      const SearchResponse wire =
          client.Search(name, queries_.Row(qi), kDim, options);
      SearchRequest request;
      request.query = queries_.Row(qi);
      request.options = options;
      const SearchResponse local = reference.Search(request);
      ASSERT_TRUE(wire.status.ok())
          << name << " q" << qi << ": " << wire.status.message();
      ASSERT_TRUE(local.status.ok());
      EXPECT_FALSE(wire.partial);
      EXPECT_EQ(wire.shards_failed, local.shards_failed);
      ExpectSameNeighbors(local.neighbors, wire.neighbors);
      // The work accounting rides the wire too, not just the answers.
      EXPECT_EQ(wire.stats.codes_estimated, local.stats.codes_estimated);
      EXPECT_EQ(wire.stats.lists_probed, local.stats.lists_probed);
      EXPECT_EQ(wire.stats.candidates_reranked,
                local.stats.candidates_reranked);
    }
  }
}

// Bitmap filters (allow and deny) encode into the request frame and give
// the same answers as their in-process IdFilter views.
TEST_F(ServerTest, WireBitmapFiltersMatchInProcess) {
  const ServerConfig config = BaseConfig();
  Server server(config);
  ASSERT_TRUE(server.Start().ok());
  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());

  const WireCollectionSpec spec = Spec(Metric::kL2, 2);
  ASSERT_TRUE(client.CreateCollection("filtered", spec, data_).ok());
  SearchEngine reference = ReferenceEngine(spec, config.collections.engine);

  std::vector<std::uint64_t> evens((kN + 63) / 64, 0);
  for (std::uint32_t id = 0; id < kN; id += 2) {
    evens[id >> 6] |= std::uint64_t{1} << (id & 63u);
  }
  const IdFilter filters[] = {IdFilter::AllowBitmap(evens.data(), kN),
                              IdFilter::DenyBitmap(evens.data(), kN)};
  for (const IdFilter& filter : filters) {
    for (std::size_t qi = 0; qi < 4; ++qi) {
      SearchOptions options = SeededOptions(500 + qi);
      options.filter = filter;
      const SearchResponse wire =
          client.Search("filtered", queries_.Row(qi), kDim, options);
      SearchRequest request;
      request.query = queries_.Row(qi);
      request.options = options;
      const SearchResponse local = reference.Search(request);
      ASSERT_TRUE(wire.status.ok()) << wire.status.message();
      ASSERT_TRUE(local.status.ok());
      ExpectSameNeighbors(local.neighbors, wire.neighbors);
      EXPECT_EQ(wire.stats.codes_filtered, local.stats.codes_filtered);
    }
  }
}

// A predicate filter is a function pointer -- it has no wire form. The
// client must refuse it locally (InvalidArgument) without burning the
// connection.
TEST_F(ServerTest, PredicateFilterCannotCrossTheWire) {
  Server server(BaseConfig());
  ASSERT_TRUE(server.Start().ok());
  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());

  SearchOptions options = SeededOptions(1);
  options.filter = IdFilter::FromPredicate(
      [](void*, std::uint32_t id) { return id % 2 == 0; }, nullptr);
  const SearchResponse response =
      client.Search("whatever", queries_.Row(0), kDim, options);
  EXPECT_EQ(response.status.code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(client.connected());
  EXPECT_TRUE(client.Ping().ok());
}

// Overload degradation crosses the wire: a request whose deadline expires
// while queued (forced deterministically by a linger much longer than the
// budget) answers kDeadlineExceeded with the partial flag set -- the same
// shape the in-process overload tests pin.
TEST_F(ServerTest, QueuedDeadlineShedCrossesTheWireAsPartial) {
  ServerConfig config = BaseConfig();
  config.collections.engine.max_batch = 32;
  config.collections.engine.batch_linger_us = 5000;
  Server server(config);
  ASSERT_TRUE(server.Start().ok());
  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
  ASSERT_TRUE(
      client.CreateCollection("shed", Spec(Metric::kL2, 1), data_).ok());

  SearchOptions options = SeededOptions(9);
  options.timeout_us = 1;  // resolved at admission; long dead after linger
  const SearchResponse response =
      client.Search("shed", queries_.Row(0), kDim, options);
  EXPECT_EQ(response.status.code(), StatusCode::kDeadlineExceeded)
      << response.status.message();
  EXPECT_TRUE(response.partial);
  EXPECT_TRUE(response.neighbors.empty());

  // The connection survived the rejection; a patient request is served.
  const SearchResponse served =
      client.Search("shed", queries_.Row(0), kDim, SeededOptions(9));
  EXPECT_TRUE(served.status.ok()) << served.status.message();
  EXPECT_FALSE(served.neighbors.empty());
}

// An admission rejection (queue full, injected deterministically) answers
// kResourceExhausted over the wire.
TEST_F(ServerTest, AdmissionRejectionCrossesTheWire) {
  if (!fail::FailpointsCompiledIn()) {
    GTEST_SKIP() << "build with -DRABITQ_FAILPOINTS=ON";
  }
  Server server(BaseConfig());
  ASSERT_TRUE(server.Start().ok());
  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
  ASSERT_TRUE(
      client.CreateCollection("full", Spec(Metric::kL2, 1), data_).ok());

  fail::Configure("engine.queue_push", fail::Mode::kOnce);
  const SearchResponse rejected =
      client.Search("full", queries_.Row(0), kDim, SeededOptions(3));
  EXPECT_EQ(rejected.status.code(), StatusCode::kResourceExhausted)
      << rejected.status.message();
  EXPECT_TRUE(rejected.neighbors.empty());

  const SearchResponse served =
      client.Search("full", queries_.Row(0), kDim, SeededOptions(3));
  EXPECT_TRUE(served.status.ok()) << served.status.message();
}

// Request-level errors arrive as first-class protocol statuses, and none of
// them burn the connection.
TEST_F(ServerTest, LifecycleErrorsCrossTheWire) {
  ServerConfig config = BaseConfig();
  config.collections.max_collections = 2;
  Server server(config);
  ASSERT_TRUE(server.Start().ok());
  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());

  EXPECT_EQ(client.CreateCollection("bad name!", Spec(Metric::kL2, 1), data_)
                .code(),
            StatusCode::kInvalidArgument);
  ASSERT_TRUE(client.CreateCollection("a", Spec(Metric::kL2, 1), data_).ok());
  EXPECT_EQ(client.CreateCollection("a", Spec(Metric::kL2, 1), data_).code(),
            StatusCode::kFailedPrecondition);

  EXPECT_EQ(
      client.Search("missing", queries_.Row(0), kDim, SeededOptions(1))
          .status.code(),
      StatusCode::kNotFound);
  std::vector<float> short_vec(kDim - 1, 0.0f);
  EXPECT_EQ(client.Add("a", short_vec.data(), kDim - 1, nullptr).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(client.DropCollection("missing").code(), StatusCode::kNotFound);

  ASSERT_TRUE(client.CreateCollection("b", Spec(Metric::kL2, 1), data_).ok());
  EXPECT_EQ(client.CreateCollection("c", Spec(Metric::kL2, 1), data_).code(),
            StatusCode::kResourceExhausted);

  EXPECT_TRUE(client.connected());
  EXPECT_TRUE(client.Ping().ok());
}

// Snapshot -> drop -> restore over the wire round-trips the collection
// bit-identically (the snapshot is the engine's crash-safe two-phase save).
TEST_F(ServerTest, SnapshotDropRestoreRoundTripsBitIdentically) {
  Server server(BaseConfig());
  ASSERT_TRUE(server.Start().ok());
  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
  ASSERT_TRUE(
      client.CreateCollection("snap", Spec(Metric::kL2, 2), data_).ok());

  std::uint32_t id = 0;
  ASSERT_TRUE(client.Add("snap", queries_.Row(15), kDim, &id).ok());
  const SearchResponse before =
      client.Search("snap", queries_.Row(0), kDim, SeededOptions(77));
  ASSERT_TRUE(before.status.ok());
  ASSERT_FALSE(before.neighbors.empty());

  ASSERT_TRUE(client.Snapshot("snap").ok());
  ASSERT_TRUE(client.DropCollection("snap").ok());
  EXPECT_EQ(
      client.Search("snap", queries_.Row(0), kDim, SeededOptions(77))
          .status.code(),
      StatusCode::kNotFound);

  ASSERT_TRUE(client.Restore("snap").ok());
  std::vector<std::string> names;
  ASSERT_TRUE(client.ListCollections(&names).ok());
  EXPECT_NE(std::find(names.begin(), names.end(), "snap"), names.end());

  const SearchResponse after =
      client.Search("snap", queries_.Row(0), kDim, SeededOptions(77));
  ASSERT_TRUE(after.status.ok()) << after.status.message();
  ExpectSameNeighbors(before.neighbors, after.neighbors);

  // The restored collection keeps serving writes.
  EXPECT_TRUE(client.Add("snap", queries_.Row(14), kDim, nullptr).ok());
}

// The stats endpoint: per-collection scrape is the historical unlabeled
// exposition; the server-wide scrape adds server counters and labels every
// collection's series with collection="<name>".
TEST_F(ServerTest, StatsAndListOverTheWire) {
  Server server(BaseConfig());
  ASSERT_TRUE(server.Start().ok());
  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
  ASSERT_TRUE(client.CreateCollection("tenant-a", Spec(Metric::kL2, 1), data_)
                  .ok());
  ASSERT_TRUE(client.CreateCollection("tenant-b", Spec(Metric::kL2, 1), data_)
                  .ok());
  (void)client.Search("tenant-a", queries_.Row(0), kDim, SeededOptions(1));

  std::vector<std::string> names;
  ASSERT_TRUE(client.ListCollections(&names).ok());
  EXPECT_EQ(names, (std::vector<std::string>{"tenant-a", "tenant-b"}));

  std::string prom;
  ASSERT_TRUE(client.Stats("tenant-a", /*format=*/1, &prom).ok());
  EXPECT_NE(prom.find("rabitq_queries_total "), std::string::npos)
      << "per-collection scrape must stay unlabeled";
  EXPECT_EQ(prom.find("collection="), std::string::npos);

  std::string server_prom;
  ASSERT_TRUE(client.Stats("", /*format=*/1, &server_prom).ok());
  EXPECT_NE(server_prom.find("rabitq_server_requests_total "),
            std::string::npos);
  EXPECT_NE(server_prom.find("collection=\"tenant-a\""), std::string::npos);
  EXPECT_NE(server_prom.find("collection=\"tenant-b\""), std::string::npos);

  std::string json;
  ASSERT_TRUE(client.Stats("", /*format=*/0, &json).ok());
  EXPECT_EQ(json.rfind("{\"server\":", 0), 0u);
  EXPECT_NE(json.find("\"tenant-a\":"), std::string::npos);
}

// A wire drain shuts the whole server down: the drain itself is
// acknowledged, Wait() returns, and the listener stops accepting.
TEST_F(ServerTest, DrainShutsTheServerDownCleanly) {
  Server server(BaseConfig());
  ASSERT_TRUE(server.Start().ok());
  const std::uint16_t port = server.port();
  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", port).ok());
  ASSERT_TRUE(
      client.CreateCollection("d", Spec(Metric::kL2, 1), data_).ok());

  EXPECT_TRUE(client.Drain().ok());
  server.Wait();
  EXPECT_TRUE(server.stopping());

  Client late;
  EXPECT_FALSE(late.Connect("127.0.0.1", port).ok());
}

// Many concurrent clients (plus a wire writer churning a second collection)
// against precomputed in-process answers -- the CI TSan job's target.
TEST_F(ServerTest, ConcurrentClientsStayBitIdentical) {
  const ServerConfig config = BaseConfig();
  Server server(config);
  ASSERT_TRUE(server.Start().ok());
  const std::uint16_t port = server.port();
  Client admin;
  ASSERT_TRUE(admin.Connect("127.0.0.1", port).ok());
  const WireCollectionSpec spec = Spec(Metric::kL2, 2);
  ASSERT_TRUE(admin.CreateCollection("readers", spec, data_).ok());
  ASSERT_TRUE(admin.CreateCollection("churn", spec, data_).ok());

  SearchEngine reference = ReferenceEngine(spec, config.collections.engine);
  std::vector<std::vector<Neighbor>> expected(8);
  for (std::size_t qi = 0; qi < expected.size(); ++qi) {
    SearchRequest request;
    request.query = queries_.Row(qi);
    request.options = SeededOptions(900 + qi);
    const SearchResponse local = reference.Search(request);
    ASSERT_TRUE(local.status.ok());
    expected[qi] = local.neighbors;
  }

  std::atomic<int> mismatches{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&, t] {
      Client client;
      if (!client.Connect("127.0.0.1", port).ok()) {
        mismatches.fetch_add(1);
        return;
      }
      for (int i = 0; i < 24; ++i) {
        const std::size_t qi = static_cast<std::size_t>(t + i) % 8;
        const SearchResponse wire = client.Search(
            "readers", queries_.Row(qi), kDim, SeededOptions(900 + qi));
        if (!wire.status.ok() || wire.neighbors != expected[qi]) {
          mismatches.fetch_add(1);
        }
      }
    });
  }
  std::thread writer([&] {
    Client client;
    if (!client.Connect("127.0.0.1", port).ok()) return;
    for (std::uint32_t i = 0; i < 48; ++i) {
      std::uint32_t id = 0;
      (void)client.Add("churn", queries_.Row(i % 16), kDim, &id);
      if (i % 3 == 0) (void)client.Delete("churn", i % 100);
      if (i % 5 == 0) {
        (void)client.Update("churn", i % 100 + 100, queries_.Row(i % 16),
                            kDim);
      }
    }
  });
  for (auto& t : readers) t.join();
  writer.join();
  EXPECT_EQ(mismatches.load(), 0);
}

// ---------------------------------------------------------- fault drills --

TEST_F(ServerTest, TornResponseWriteFailsClientClosedAndServerSurvives) {
  if (!fail::FailpointsCompiledIn()) {
    GTEST_SKIP() << "build with -DRABITQ_FAILPOINTS=ON";
  }
  Server server(BaseConfig());
  ASSERT_TRUE(server.Start().ok());
  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
  ASSERT_TRUE(client.Ping().ok());

  // The server flushes HALF the next response frame, then fails the
  // connection. The client must reject the stub (fail closed), not parse it.
  fail::Configure("server.conn_write", fail::Mode::kOnce);
  const Status torn = client.Ping();
  EXPECT_FALSE(torn.ok());
  EXPECT_FALSE(client.connected());

  Client fresh;
  ASSERT_TRUE(fresh.Connect("127.0.0.1", server.port()).ok());
  EXPECT_TRUE(fresh.Ping().ok());
}

TEST_F(ServerTest, InjectedReadFaultDropsOnlyThatConnection) {
  if (!fail::FailpointsCompiledIn()) {
    GTEST_SKIP() << "build with -DRABITQ_FAILPOINTS=ON";
  }
  Server server(BaseConfig());
  ASSERT_TRUE(server.Start().ok());

  // Armed before the connection exists: its very first frame read fails and
  // the connection drops without a response.
  fail::Configure("server.conn_read", fail::Mode::kOnce);
  Client doomed;
  ASSERT_TRUE(doomed.Connect("127.0.0.1", server.port()).ok());
  EXPECT_FALSE(doomed.Ping().ok());

  Client fresh;
  ASSERT_TRUE(fresh.Connect("127.0.0.1", server.port()).ok());
  EXPECT_TRUE(fresh.Ping().ok());
}

TEST_F(ServerTest, InjectedAcceptFailureIsSurvived) {
  if (!fail::FailpointsCompiledIn()) {
    GTEST_SKIP() << "build with -DRABITQ_FAILPOINTS=ON";
  }
  // Armed before Start: the accept loop's first pass fails, is counted, and
  // the loop keeps serving.
  fail::Configure("server.accept", fail::Mode::kOnce);
  Server server(BaseConfig());
  ASSERT_TRUE(server.Start().ok());
  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
  EXPECT_TRUE(client.Ping().ok());

  const obs::MetricsSnapshot snapshot = server.metrics()->Snapshot();
  const obs::MetricValue* errors =
      snapshot.Find("rabitq_server_accept_errors_total");
  ASSERT_NE(errors, nullptr);
  EXPECT_GE(errors->u64, 1u);
}

// A peer that connects and then stalls mid-frame is bounded by the
// per-socket io timeout: the server drops it (counted as a framing error)
// and keeps serving everyone else.
TEST_F(ServerTest, SlowClientIsDroppedByIoTimeout) {
  ServerConfig config = BaseConfig();
  config.io_timeout_ms = 200;
  Server server(config);
  ASSERT_TRUE(server.Start().ok());

  Socket stalled;
  ASSERT_TRUE(ConnectTcp("127.0.0.1", server.port(), &stalled).ok());
  const std::uint32_t magic = kFrameMagic;
  ASSERT_TRUE(WriteFull(stalled.fd(), &magic, sizeof(magic)).ok());
  // Never send the rest of the header. The server's recv times out and the
  // connection fails closed: our next read sees EOF, never a response.
  std::uint8_t byte = 0;
  const Status read_status = ReadFull(stalled.fd(), &byte, 1);
  EXPECT_FALSE(read_status.ok());

  Client fresh;
  ASSERT_TRUE(fresh.Connect("127.0.0.1", server.port()).ok());
  EXPECT_TRUE(fresh.Ping().ok());

  const obs::MetricsSnapshot snapshot = server.metrics()->Snapshot();
  const obs::MetricValue* frame_errors =
      snapshot.Find("rabitq_server_frame_errors_total");
  ASSERT_NE(frame_errors, nullptr);
  EXPECT_GE(frame_errors->u64, 1u);
}

// Pure codec check: a degraded response (deadline exceeded, partial, some
// neighbors, shard failures, work stats) round-trips through the wire
// encoding without losing a field.
TEST(ServerProtocolTest, DegradedSearchResponseRoundTripsLosslessly) {
  SearchResponse original;
  original.status = Status::DeadlineExceeded("mid-scan stop");
  original.partial = true;
  original.shards_ok = 3;
  original.shards_failed = 1;
  original.neighbors = {{1.25f, 42}, {2.5f, 7}};
  original.stats.codes_estimated = 1000;
  original.stats.candidates_reranked = 50;
  original.stats.lists_probed = 9;
  original.stats.codes_filtered = 123;
  original.stats.codes_refined = 17;

  std::string body;
  WireWriter w(&body);
  EncodeSearchResponse(original, &w);
  WireReader r(reinterpret_cast<const std::uint8_t*>(body.data()),
               body.size());
  SearchResponse decoded;
  ASSERT_TRUE(DecodeSearchResponse(&r, &decoded));
  EXPECT_TRUE(r.AtEnd());

  EXPECT_EQ(decoded.status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(decoded.status.message(), "mid-scan stop");
  EXPECT_TRUE(decoded.partial);
  EXPECT_EQ(decoded.shards_ok, 3u);
  EXPECT_EQ(decoded.shards_failed, 1u);
  ExpectSameNeighbors(original.neighbors, decoded.neighbors);
  EXPECT_EQ(decoded.stats.codes_estimated, 1000u);
  EXPECT_EQ(decoded.stats.candidates_reranked, 50u);
  EXPECT_EQ(decoded.stats.lists_probed, 9u);
  EXPECT_EQ(decoded.stats.codes_filtered, 123u);
  EXPECT_EQ(decoded.stats.codes_refined, 17u);
}

}  // namespace
}  // namespace server
}  // namespace rabitq
