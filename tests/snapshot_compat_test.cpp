// Snapshot format compatibility: the committed v1 golden file (written by
// the pre-lifecycle code, magic "RBQIVF01"), v2 golden file (written by
// the pre-metric code, "RBQIVF02"), v3 golden file (written by the
// pre-multi-bit code, "RBQIVF03", inner-product metric) and v4 golden file
// (written by the pre-checksum code, "RBQIVF04", 2-bit codes) must keep
// loading -- v1/v2 as kL2, v1-v3 with bits_per_dim = 1 -- and the current
// v5 format ("RBQIVF05", which appends a CRC-32 footer over the body) must
// round-trip a mutated index -- tombstones, stale update entries and all --
// with bit-identical search results. The metric byte (offset 12) and the
// rotator-kind byte (offset 40) are fuzzed explicitly: in-range values load
// with that setting, out-of-range values fail closed before the rotator
// rebuild. Body corruption under v5 is caught by the checksum.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "index/ivf.h"
#include "index/sharded.h"
#include "util/crc32.h"
#include "util/prng.h"

#ifndef RABITQ_TEST_DATA_DIR
#define RABITQ_TEST_DATA_DIR "tests/data"
#endif

namespace rabitq {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

// Mirrors the generator that produced tests/data/golden_v1.rbq: 200 x 16
// Gaussian vectors from Rng(123), 8 lists, default RabitqConfig.
constexpr std::size_t kGoldenN = 200;
constexpr std::size_t kGoldenDim = 16;
constexpr std::size_t kGoldenLists = 8;
constexpr std::size_t kGoldenBits = 64;

void ExpectSameNeighbors(const std::vector<Neighbor>& a,
                         const std::vector<Neighbor>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].second, b[i].second) << "rank " << i;
    EXPECT_EQ(a[i].first, b[i].first) << "rank " << i;
  }
}

std::vector<std::vector<Neighbor>> SearchAll(const IvfRabitqIndex& index,
                                             const IvfSearchParams& params) {
  Rng qrng(5150);
  std::vector<std::vector<Neighbor>> out;
  for (std::size_t q = 0; q < 10; ++q) {
    std::vector<float> query(index.dim());
    for (auto& v : query) v = static_cast<float>(qrng.Gaussian());
    std::vector<Neighbor> result;
    EXPECT_TRUE(index.Search(query.data(), params, /*seed=*/9000 + q, &result)
                    .ok());
    out.push_back(std::move(result));
  }
  return out;
}

TEST(SnapshotCompatTest, V1GoldenFileLoads) {
  IvfRabitqIndex index;
  const std::string golden =
      std::string(RABITQ_TEST_DATA_DIR) + "/golden_v1.rbq";
  ASSERT_TRUE(index.Load(golden).ok()) << "cannot load v1 golden " << golden;
  EXPECT_EQ(index.size(), kGoldenN);
  EXPECT_EQ(index.dim(), kGoldenDim);
  EXPECT_EQ(index.num_lists(), kGoldenLists);
  EXPECT_EQ(index.encoder().total_bits(), kGoldenBits);
  // v1 predates tombstones and metrics: everything is live, metric is L2.
  EXPECT_EQ(index.live_size(), kGoldenN);
  EXPECT_EQ(index.num_tombstones(), 0u);
  EXPECT_EQ(index.metric(), Metric::kL2);

  // Every id is live in exactly one list, and a full-probe self-search
  // finds each sampled vector at distance ~0.
  std::size_t total_entries = 0;
  for (std::size_t l = 0; l < index.num_lists(); ++l) {
    total_entries += index.list_ids(l).size();
    EXPECT_EQ(index.list_tombstones(l), 0u);
  }
  EXPECT_EQ(total_entries, kGoldenN);
  IvfSearchParams params;
  params.k = 1;
  params.nprobe = index.num_lists();
  for (std::uint32_t id = 0; id < kGoldenN; id += 37) {
    std::vector<Neighbor> out;
    ASSERT_TRUE(index.Search(index.vector(id), params, id, &out).ok());
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].second, id);
    EXPECT_NEAR(out[0].first, 0.0f, 1e-5f);
  }
}

// The v2 golden file (pre-metric writer) loads as kL2 with bit-identical
// search results to the v1 golden over the same generator data.
TEST(SnapshotCompatTest, V2GoldenFileLoadsAsL2) {
  IvfRabitqIndex v2;
  const std::string golden =
      std::string(RABITQ_TEST_DATA_DIR) + "/golden_v2.rbq";
  ASSERT_TRUE(v2.Load(golden).ok()) << "cannot load v2 golden " << golden;
  EXPECT_EQ(v2.size(), kGoldenN);
  EXPECT_EQ(v2.dim(), kGoldenDim);
  EXPECT_EQ(v2.num_lists(), kGoldenLists);
  EXPECT_EQ(v2.metric(), Metric::kL2);
  EXPECT_EQ(v2.num_tombstones(), 0u);

  IvfRabitqIndex v1;
  ASSERT_TRUE(
      v1.Load(std::string(RABITQ_TEST_DATA_DIR) + "/golden_v1.rbq").ok());
  IvfSearchParams params;
  params.k = 10;
  params.nprobe = 4;
  const auto want = SearchAll(v1, params);
  const auto got = SearchAll(v2, params);
  for (std::size_t q = 0; q < want.size(); ++q) {
    ExpectSameNeighbors(want[q], got[q]);
  }
}

// The v3 golden file (pre-multi-bit writer, inner-product metric) pins the
// metric-persisting format: it must load with its metric, bits_per_dim = 1,
// stored arrays bit-identical to an in-test rebuild from the generator
// recipe, and it must survive a current-format (v4) re-save bit-identically.
TEST(SnapshotCompatTest, V3GoldenFileLoadsWithMetricAndMatchesRebuild) {
  IvfRabitqIndex golden;
  const std::string path =
      std::string(RABITQ_TEST_DATA_DIR) + "/golden_v3.rbq";
  ASSERT_TRUE(golden.Load(path).ok()) << "cannot load v3 golden " << path;
  EXPECT_EQ(golden.size(), kGoldenN);
  EXPECT_EQ(golden.dim(), kGoldenDim);
  EXPECT_EQ(golden.num_lists(), kGoldenLists);
  EXPECT_EQ(golden.metric(), Metric::kInnerProduct);
  EXPECT_EQ(golden.encoder().config().bits_per_dim, 1u);
  EXPECT_EQ(golden.num_tombstones(), 0u);

  // The generator recipe, replayed: same data, same build, same metric.
  Rng rng(123);
  Matrix data(kGoldenN, kGoldenDim);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data.data()[i] = static_cast<float>(rng.Gaussian());
  }
  IvfRabitqIndex rebuilt;
  IvfConfig ivf;
  ivf.num_lists = kGoldenLists;
  ivf.metric = Metric::kInnerProduct;
  ASSERT_TRUE(rebuilt.Build(data, ivf, RabitqConfig{}).ok());
  ASSERT_EQ(rebuilt.num_lists(), golden.num_lists());
  for (std::size_t l = 0; l < golden.num_lists(); ++l) {
    ASSERT_EQ(golden.list_ids(l), rebuilt.list_ids(l)) << "list " << l;
    const RabitqCodeStore& a = golden.list_codes(l);
    const RabitqCodeStore& b = rebuilt.list_codes(l);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      for (std::size_t w = 0; w < a.words_per_code(); ++w) {
        ASSERT_EQ(a.BitsAt(i)[w], b.BitsAt(i)[w]) << "list " << l;
      }
      EXPECT_EQ(a.dist_to_centroid(i), b.dist_to_centroid(i));
      EXPECT_EQ(a.o_o(i), b.o_o(i));
      EXPECT_EQ(a.bit_count(i), b.bit_count(i));
      EXPECT_EQ(a.norm_sq(i), b.norm_sq(i));
    }
  }

  IvfSearchParams params;
  params.k = 10;
  params.nprobe = 4;
  const auto want = SearchAll(rebuilt, params);
  const auto got = SearchAll(golden, params);
  for (std::size_t q = 0; q < want.size(); ++q) {
    ExpectSameNeighbors(want[q], got[q]);
  }

  // Current-format re-save keeps metric and results bit-identical.
  const std::string resaved = TempPath("golden_v3_as_v4.rbq");
  ASSERT_TRUE(golden.Save(resaved).ok());
  IvfRabitqIndex v4;
  ASSERT_TRUE(v4.Load(resaved).ok());
  EXPECT_EQ(v4.metric(), Metric::kInnerProduct);
  const auto after = SearchAll(v4, params);
  for (std::size_t q = 0; q < want.size(); ++q) {
    ExpectSameNeighbors(want[q], after[q]);
  }
  std::remove(resaved.c_str());
}

// The v4 golden file (pre-checksum writer, 2-bit codes, inner product) pins
// the multi-bit format: it must load with bits_per_dim = 2 and its metric,
// search bit-identically to an in-test rebuild from the generator recipe,
// and survive a current-format (v5, checksummed) re-save bit-identically.
TEST(SnapshotCompatTest, V4GoldenFileLoadsAndSurvivesV5ReSave) {
  IvfRabitqIndex golden;
  const std::string path =
      std::string(RABITQ_TEST_DATA_DIR) + "/golden_v4.rbq";
  ASSERT_TRUE(golden.Load(path).ok()) << "cannot load v4 golden " << path;
  EXPECT_EQ(golden.size(), kGoldenN);
  EXPECT_EQ(golden.dim(), kGoldenDim);
  EXPECT_EQ(golden.num_lists(), kGoldenLists);
  EXPECT_EQ(golden.metric(), Metric::kInnerProduct);
  EXPECT_EQ(golden.encoder().config().bits_per_dim, 2u);
  EXPECT_EQ(golden.num_tombstones(), 0u);

  // The generator recipe, replayed: same data, same build, 2-bit codes.
  Rng rng(123);
  Matrix data(kGoldenN, kGoldenDim);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data.data()[i] = static_cast<float>(rng.Gaussian());
  }
  IvfRabitqIndex rebuilt;
  IvfConfig ivf;
  ivf.num_lists = kGoldenLists;
  ivf.metric = Metric::kInnerProduct;
  RabitqConfig rabitq;
  rabitq.bits_per_dim = 2;
  ASSERT_TRUE(rebuilt.Build(data, ivf, rabitq).ok());

  IvfSearchParams params;
  params.k = 10;
  params.nprobe = 4;
  const auto want = SearchAll(rebuilt, params);
  const auto got = SearchAll(golden, params);
  for (std::size_t q = 0; q < want.size(); ++q) {
    ExpectSameNeighbors(want[q], got[q]);
  }

  const std::string resaved = TempPath("golden_v4_as_v5.rbq");
  ASSERT_TRUE(golden.Save(resaved).ok());
  IvfRabitqIndex v5;
  ASSERT_TRUE(v5.Load(resaved).ok());
  EXPECT_EQ(v5.metric(), Metric::kInnerProduct);
  EXPECT_EQ(v5.encoder().config().bits_per_dim, 2u);
  const auto after = SearchAll(v5, params);
  for (std::size_t q = 0; q < want.size(); ++q) {
    ExpectSameNeighbors(want[q], after[q]);
  }
  std::remove(resaved.c_str());
}

TEST(SnapshotCompatTest, V1GoldenSurvivesCurrentRoundTripBitIdentically) {
  IvfRabitqIndex v1;
  ASSERT_TRUE(
      v1.Load(std::string(RABITQ_TEST_DATA_DIR) + "/golden_v1.rbq").ok());
  IvfSearchParams params;
  params.k = 10;
  params.nprobe = 4;
  const auto before = SearchAll(v1, params);

  const std::string path = TempPath("golden_as_v3.rbq");
  ASSERT_TRUE(v1.Save(path).ok());  // rewrites in the current (v3) format
  IvfRabitqIndex v3;
  ASSERT_TRUE(v3.Load(path).ok());
  EXPECT_EQ(v3.metric(), Metric::kL2);
  const auto after = SearchAll(v3, params);
  for (std::size_t q = 0; q < before.size(); ++q) {
    ExpectSameNeighbors(before[q], after[q]);
  }
  std::remove(path.c_str());
}

TEST(SnapshotCompatTest, MutatedIndexRoundTripsBitIdentically) {
  // Build, then mutate: deletes, updates (which leave stale tombstoned
  // entries in their old lists) and fresh appends.
  Rng rng(2024);
  Matrix data(600, 24);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data.data()[i] = static_cast<float>(rng.Gaussian());
  }
  IvfRabitqIndex index;
  IvfConfig ivf;
  ivf.num_lists = 12;
  ASSERT_TRUE(index.Build(data, ivf, RabitqConfig{}).ok());
  for (std::uint32_t id = 0; id < 600; id += 3) {
    ASSERT_TRUE(index.Delete(id).ok());
  }
  std::vector<float> vec(24);
  // Step 51 keeps id = 1 (mod 3), dodging the ids deleted above.
  for (std::uint32_t id = 1; id < 600; id += 51) {
    for (auto& v : vec) v = static_cast<float>(rng.Gaussian()) * 3.0f;
    ASSERT_TRUE(index.Update(id, vec.data()).ok());
  }
  for (int i = 0; i < 20; ++i) {
    for (auto& v : vec) v = static_cast<float>(rng.Gaussian());
    ASSERT_TRUE(index.Add(vec.data()).ok());
  }
  ASSERT_GT(index.num_tombstones(), 0u);

  IvfSearchParams params;
  params.k = 10;
  params.nprobe = 12;
  const auto before = SearchAll(index, params);

  const std::string path = TempPath("mutated_v2.rbq");
  ASSERT_TRUE(index.Save(path).ok());
  IvfRabitqIndex loaded;
  ASSERT_TRUE(loaded.Load(path).ok());

  // Lifecycle accounting survives the round trip...
  EXPECT_EQ(loaded.size(), index.size());
  EXPECT_EQ(loaded.live_size(), index.live_size());
  EXPECT_EQ(loaded.num_tombstones(), index.num_tombstones());
  for (std::size_t l = 0; l < index.num_lists(); ++l) {
    EXPECT_EQ(loaded.list_tombstones(l), index.list_tombstones(l));
    EXPECT_EQ(loaded.list_ids(l), index.list_ids(l));
  }
  for (std::uint32_t id = 0; id < index.size(); ++id) {
    EXPECT_EQ(loaded.IsDeleted(id), index.IsDeleted(id)) << "id " << id;
  }

  // ...and search results are bit-identical.
  const auto after = SearchAll(loaded, params);
  for (std::size_t q = 0; q < before.size(); ++q) {
    ExpectSameNeighbors(before[q], after[q]);
  }

  // The reloaded index keeps mutating correctly: compaction drains the
  // restored tombstones and the results stay bit-identical.
  ASSERT_TRUE(loaded.Compact().ok());
  EXPECT_EQ(loaded.num_tombstones(), 0u);
  const auto compacted = SearchAll(loaded, params);
  for (std::size_t q = 0; q < before.size(); ++q) {
    ExpectSameNeighbors(before[q], compacted[q]);
  }
  std::remove(path.c_str());
}

// Regression: repeated updates of one id leave that id's lists with far
// more (tombstoned) entries than the index has vectors; the v2 loader's
// per-list sanity bound must come from the stored entry total, not from n.
TEST(SnapshotCompatTest, HeavilyUpdatedTinyIndexRoundTrips) {
  Rng rng(9);
  Matrix data(4, 8);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data.data()[i] = static_cast<float>(rng.Gaussian());
  }
  IvfRabitqIndex index;
  IvfConfig ivf;
  ivf.num_lists = 2;
  ASSERT_TRUE(index.Build(data, ivf, RabitqConfig{}).ok());
  std::vector<float> vec(8);
  for (int round = 0; round < 10; ++round) {
    for (auto& v : vec) v = static_cast<float>(rng.Gaussian());
    ASSERT_TRUE(index.Update(0, vec.data()).ok());
  }
  ASSERT_EQ(index.num_tombstones(), 10u);

  const std::string path = TempPath("tiny_updated.rbq");
  ASSERT_TRUE(index.Save(path).ok());
  IvfRabitqIndex loaded;
  ASSERT_TRUE(loaded.Load(path).ok());
  EXPECT_EQ(loaded.size(), 4u);
  EXPECT_EQ(loaded.live_size(), 4u);
  EXPECT_EQ(loaded.num_tombstones(), 10u);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Corruption robustness: the loaders must FAIL CLOSED on damaged snapshots.
// Truncations at any offset must produce an error (never a crash, never a
// silently short index); single-bit flips must never crash or OOM -- they
// either error out or, when they hit non-structural payload bytes (raw
// vector data has no checksum), load an index that still upholds its own
// invariants and can serve a search.

std::vector<unsigned char> ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::vector<unsigned char>(std::istreambuf_iterator<char>(in),
                                    std::istreambuf_iterator<char>());
}

void WriteFileBytes(const std::string& path,
                    const std::vector<unsigned char>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << path;
}

// The v5 footer is the CRC-32 of every byte between the 12-byte header
// (magic + version) and the final 4 footer bytes. Byte-patching fuzzers
// that test a SPECIFIC validation path must recompute it after patching,
// or the checksum would mask the corruption under test.
void FixupChecksum(std::vector<unsigned char>* bytes) {
  ASSERT_GT(bytes->size(), 16u);
  const std::size_t crc_off = bytes->size() - 4;
  const std::uint32_t crc = Crc32(bytes->data() + 12, crc_off - 12);
  for (std::size_t b = 0; b < 4; ++b) {
    (*bytes)[crc_off + b] = static_cast<unsigned char>((crc >> (8 * b)) & 0xFFu);
  }
}

// A small index with every lifecycle feature in the file: tombstones,
// stale update entries, appends.
IvfRabitqIndex BuildMutatedIndex() {
  Rng rng(404);
  Matrix data(150, 12);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data.data()[i] = static_cast<float>(rng.Gaussian());
  }
  IvfRabitqIndex index;
  IvfConfig ivf;
  ivf.num_lists = 6;
  EXPECT_TRUE(index.Build(data, ivf, RabitqConfig{}).ok());
  std::vector<float> vec(12);
  for (std::uint32_t id = 0; id < 150; id += 5) {
    EXPECT_TRUE(index.Delete(id).ok());
  }
  for (std::uint32_t id = 1; id < 150; id += 31) {
    if (id % 5 == 0) continue;  // deleted above
    for (auto& v : vec) v = static_cast<float>(rng.Gaussian());
    EXPECT_TRUE(index.Update(id, vec.data()).ok());
  }
  for (int i = 0; i < 5; ++i) {
    for (auto& v : vec) v = static_cast<float>(rng.Gaussian());
    EXPECT_TRUE(index.Add(vec.data()).ok());
  }
  return index;
}

// If a corrupted file loaded "successfully", the result must still be a
// self-consistent index: accounting adds up and a full-probe search runs
// without crashing.
void ExpectLoadedIndexIsConsistent(const IvfRabitqIndex& index) {
  ASSERT_GT(index.num_lists(), 0u);
  EXPECT_LE(index.live_size(), index.size());
  std::size_t live = 0, dead = 0;
  for (std::size_t l = 0; l < index.num_lists(); ++l) {
    EXPECT_LE(index.list_tombstones(l), index.list_ids(l).size());
    EXPECT_EQ(index.list_ids(l).size(), index.list_codes(l).size());
    live += index.list_ids(l).size() - index.list_tombstones(l);
    dead += index.list_tombstones(l);
  }
  EXPECT_EQ(live, index.live_size());
  EXPECT_EQ(dead, index.num_tombstones());
  std::vector<float> query(index.dim(), 0.25f);
  IvfSearchParams params;
  params.k = 5;
  params.nprobe = index.num_lists();
  std::vector<Neighbor> out;
  EXPECT_TRUE(index.Search(query.data(), params, /*seed=*/1, &out).ok());
  for (const Neighbor& nb : out) {
    EXPECT_FALSE(index.IsDeleted(nb.second));
  }
}

TEST(SnapshotFuzzTest, V2TruncationsFailClosed) {
  const std::string path = TempPath("fuzz_truncate.rbq");
  ASSERT_TRUE(BuildMutatedIndex().Save(path).ok());
  const std::vector<unsigned char> bytes = ReadFileBytes(path);
  ASSERT_GT(bytes.size(), 64u);

  // Every header-region prefix, then a deterministic sample of the rest.
  std::vector<std::size_t> lengths;
  for (std::size_t len = 0; len < 64; ++len) lengths.push_back(len);
  Rng rng(7);
  for (int i = 0; i < 64; ++i) {
    lengths.push_back(64 + rng.UniformInt(bytes.size() - 64 - 1));
  }
  lengths.push_back(bytes.size() - 1);  // one byte short

  const std::string mutant = TempPath("fuzz_truncate_mutant.rbq");
  for (const std::size_t len : lengths) {
    WriteFileBytes(mutant,
                   {bytes.begin(), bytes.begin() + static_cast<long>(len)});
    IvfRabitqIndex loaded;
    EXPECT_FALSE(loaded.Load(mutant).ok())
        << "truncation to " << len << " of " << bytes.size()
        << " bytes loaded successfully";
  }
  std::remove(path.c_str());
  std::remove(mutant.c_str());
}

TEST(SnapshotFuzzTest, V2BitFlipsNeverCrashAndHeaderFlipsFailClosed) {
  const std::string path = TempPath("fuzz_flip.rbq");
  ASSERT_TRUE(BuildMutatedIndex().Save(path).ok());
  const std::vector<unsigned char> bytes = ReadFileBytes(path);

  // Every bit of the header region (magic + version + config), then a
  // deterministic sample across the whole payload.
  std::vector<std::pair<std::size_t, int>> flips;
  for (std::size_t off = 0; off < 48; ++off) {
    for (int bit = 0; bit < 8; ++bit) flips.emplace_back(off, bit);
  }
  Rng rng(11);
  for (int i = 0; i < 256; ++i) {
    flips.emplace_back(rng.UniformInt(bytes.size()),
                       static_cast<int>(rng.UniformInt(8)));
  }

  const std::string mutant = TempPath("fuzz_flip_mutant.rbq");
  for (const auto& [off, bit] : flips) {
    std::vector<unsigned char> corrupted = bytes;
    corrupted[off] ^= static_cast<unsigned char>(1u << bit);
    WriteFileBytes(mutant, corrupted);
    IvfRabitqIndex loaded;
    const Status status = loaded.Load(mutant);  // must not crash or OOM
    if (off < 12) {
      // Magic or version damage must always be rejected.
      EXPECT_FALSE(status.ok()) << "header flip at " << off << ":" << bit;
    } else if (status.ok()) {
      ExpectLoadedIndexIsConsistent(loaded);
    }
  }
  std::remove(path.c_str());
  std::remove(mutant.c_str());
}

// The v3 metric field (u32 at offset 12, right after magic + version) is
// the headline bugfix surface: every in-range value loads an index SERVING
// that metric (the factors are recomputed from the stored norms, so the
// index stays self-consistent), every out-of-range value is rejected --
// BEFORE the O(B^3) rotator rebuild ever runs.
TEST(SnapshotFuzzTest, V3MetricByteInRangeLoadsOutOfRangeFailsClosed) {
  const std::string path = TempPath("fuzz_metric.rbq");
  ASSERT_TRUE(BuildMutatedIndex().Save(path).ok());
  const std::vector<unsigned char> bytes = ReadFileBytes(path);
  constexpr std::size_t kMetricOffset = 12;  // magic(8) + version(4)
  ASSERT_EQ(bytes[kMetricOffset], 0u) << "golden writer saved non-L2?";

  const std::string mutant = TempPath("fuzz_metric_mutant.rbq");
  const Metric kWant[] = {Metric::kL2, Metric::kInnerProduct, Metric::kCosine};
  for (std::uint32_t value = 0; value <= kMaxMetricValue; ++value) {
    std::vector<unsigned char> patched = bytes;
    patched[kMetricOffset] = static_cast<unsigned char>(value);
    FixupChecksum(&patched);
    WriteFileBytes(mutant, patched);
    IvfRabitqIndex loaded;
    ASSERT_TRUE(loaded.Load(mutant).ok()) << "metric value " << value;
    EXPECT_EQ(loaded.metric(), kWant[value]);
    ExpectLoadedIndexIsConsistent(loaded);
  }
  for (const std::uint32_t value :
       {kMaxMetricValue + 1, std::uint32_t{17}, std::uint32_t{255}}) {
    std::vector<unsigned char> patched = bytes;
    patched[kMetricOffset] = static_cast<unsigned char>(value);
    FixupChecksum(&patched);
    WriteFileBytes(mutant, patched);
    IvfRabitqIndex loaded;
    EXPECT_FALSE(loaded.Load(mutant).ok())
        << "out-of-range metric " << value << " loaded";
  }
  // High bytes of the u32 too: any of them non-zero is out of range.
  for (std::size_t byte = 1; byte < 4; ++byte) {
    std::vector<unsigned char> patched = bytes;
    patched[kMetricOffset + byte] = 1;
    FixupChecksum(&patched);
    WriteFileBytes(mutant, patched);
    IvfRabitqIndex loaded;
    EXPECT_FALSE(loaded.Load(mutant).ok())
        << "metric high byte " << byte << " loaded";
  }
  std::remove(path.c_str());
  std::remove(mutant.c_str());
}

// The rotator-kind field (u32 at offset 40, after metric + dim + bits +
// eps0 + query_bits) gates the O(B^3) rotator rebuild: every in-range value
// loads a self-consistent index with that rotator, every out-of-range value
// is rejected with "corrupt rotator kind" before the rebuild runs.
TEST(SnapshotFuzzTest, RotatorKindByteInRangeLoadsOutOfRangeFailsClosed) {
  const std::string path = TempPath("fuzz_rotator.rbq");
  ASSERT_TRUE(BuildMutatedIndex().Save(path).ok());
  const std::vector<unsigned char> bytes = ReadFileBytes(path);
  // magic(8) + version(4) + metric(4) + dim(8) + total_bits(8) + eps0(4) +
  // query_bits(4).
  constexpr std::size_t kRotatorOffset = 40;
  ASSERT_EQ(bytes[kRotatorOffset],
            static_cast<unsigned char>(RotatorKind::kDense))
      << "golden writer saved a non-default rotator?";

  const std::string mutant = TempPath("fuzz_rotator_mutant.rbq");
  for (const RotatorKind kind :
       {RotatorKind::kDense, RotatorKind::kFht, RotatorKind::kIdentity}) {
    std::vector<unsigned char> patched = bytes;
    patched[kRotatorOffset] = static_cast<unsigned char>(kind);
    FixupChecksum(&patched);
    WriteFileBytes(mutant, patched);
    IvfRabitqIndex loaded;
    ASSERT_TRUE(loaded.Load(mutant).ok())
        << "rotator kind " << static_cast<int>(kind);
    EXPECT_EQ(loaded.encoder().config().rotator, kind);
    ExpectLoadedIndexIsConsistent(loaded);
  }
  for (const unsigned char value : {3, 17, 255}) {
    std::vector<unsigned char> patched = bytes;
    patched[kRotatorOffset] = value;
    FixupChecksum(&patched);
    WriteFileBytes(mutant, patched);
    IvfRabitqIndex loaded;
    EXPECT_FALSE(loaded.Load(mutant).ok())
        << "out-of-range rotator kind " << static_cast<int>(value)
        << " loaded";
  }
  // High bytes of the u32: any of them non-zero is out of range.
  for (std::size_t byte = 1; byte < 4; ++byte) {
    std::vector<unsigned char> patched = bytes;
    patched[kRotatorOffset + byte] = 1;
    FixupChecksum(&patched);
    WriteFileBytes(mutant, patched);
    IvfRabitqIndex loaded;
    EXPECT_FALSE(loaded.Load(mutant).ok())
        << "rotator high byte " << byte << " loaded";
  }
  std::remove(path.c_str());
  std::remove(mutant.c_str());
}

// The v5 CRC-32 footer: corrupting ANY body byte -- including raw vector
// payload, which no pre-v5 structural check could detect -- fails closed
// with a checksum error, as does corrupting the footer itself. Loading a
// patched body requires recomputing the footer (what FixupChecksum, and
// only FixupChecksum, does for the header fuzzers above).
TEST(SnapshotFuzzTest, V5ChecksumCatchesBodyCorruption) {
  const std::string path = TempPath("fuzz_crc.rbq");
  ASSERT_TRUE(BuildMutatedIndex().Save(path).ok());
  const std::vector<unsigned char> bytes = ReadFileBytes(path);
  ASSERT_GT(bytes.size(), 16u);
  {
    // The writer's own footer must agree with the recomputation the fuzzers
    // rely on -- pins the checksum coverage ([12, size - 4)) itself.
    std::vector<unsigned char> refooted = bytes;
    FixupChecksum(&refooted);
    EXPECT_EQ(refooted, bytes) << "footer does not match recomputed CRC";
  }

  const std::string mutant = TempPath("fuzz_crc_mutant.rbq");
  Rng rng(33);
  for (int i = 0; i < 64; ++i) {
    std::vector<unsigned char> corrupted = bytes;
    const std::size_t off = 12 + rng.UniformInt(bytes.size() - 16);
    corrupted[off] ^= static_cast<unsigned char>(1u << rng.UniformInt(8));
    WriteFileBytes(mutant, corrupted);
    IvfRabitqIndex loaded;
    EXPECT_FALSE(loaded.Load(mutant).ok())
        << "body flip at " << off << " loaded despite checksum";
  }
  for (std::size_t b = 1; b <= 4; ++b) {
    std::vector<unsigned char> corrupted = bytes;
    corrupted[bytes.size() - b] ^= 0x01;
    WriteFileBytes(mutant, corrupted);
    IvfRabitqIndex loaded;
    EXPECT_FALSE(loaded.Load(mutant).ok()) << "footer flip loaded";
  }
  std::remove(path.c_str());
  std::remove(mutant.c_str());
}

TEST(SnapshotFuzzTest, ShardedManifestCorruptionFailsClosed) {
  const std::string dir =
      ::testing::TempDir() + "/fuzz_sharded_snapshot";
  std::filesystem::remove_all(dir);
  {
    Rng rng(21);
    Matrix data(120, 8);
    for (std::size_t i = 0; i < data.size(); ++i) {
      data.data()[i] = static_cast<float>(rng.Gaussian());
    }
    ShardedIndex index;
    ShardedConfig config;
    config.num_shards = 3;
    config.ivf.num_lists = 4;
    ASSERT_TRUE(index.Build(data, config).ok());
    for (std::uint32_t id = 0; id < 120; id += 9) {
      ASSERT_TRUE(index.Delete(id).ok());
    }
    ASSERT_TRUE(index.Save(dir).ok());
  }
  const std::string manifest = dir + "/MANIFEST";
  const std::vector<unsigned char> bytes = ReadFileBytes(manifest);
  ASSERT_GT(bytes.size(), 12u);

  // Any manifest truncation fails closed (step > 1 keeps the test quick;
  // the offsets still sweep header, counts, and map regions).
  for (std::size_t len = 0; len < bytes.size(); len += 13) {
    WriteFileBytes(manifest,
                   {bytes.begin(), bytes.begin() + static_cast<long>(len)});
    ShardedIndex loaded;
    EXPECT_FALSE(loaded.Load(dir).ok()) << "manifest truncated to " << len;
  }

  // Bit flips never crash; structural damage (shard count, id space, map
  // entries) is caught by the bijection and size cross-checks.
  Rng rng(13);
  for (int i = 0; i < 64; ++i) {
    std::vector<unsigned char> corrupted = bytes;
    const std::size_t off = rng.UniformInt(bytes.size());
    corrupted[off] ^= static_cast<unsigned char>(1u << rng.UniformInt(8));
    WriteFileBytes(manifest, corrupted);
    ShardedIndex loaded;
    const Status status = loaded.Load(dir);  // must not crash
    if (status.ok()) {
      // Payload-only damage: the index must still be self-consistent.
      EXPECT_EQ(loaded.num_shards(), 3u);
      EXPECT_LE(loaded.live_size(), loaded.size());
    }
  }
  WriteFileBytes(manifest, bytes);

  // A missing or truncated shard blob fails closed too.
  {
    const std::string blob = dir + "/shard_0001.rbq";
    const std::vector<unsigned char> blob_bytes = ReadFileBytes(blob);
    WriteFileBytes(blob, {blob_bytes.begin(),
                          blob_bytes.begin() +
                              static_cast<long>(blob_bytes.size() / 2)});
    ShardedIndex loaded;
    EXPECT_FALSE(loaded.Load(dir).ok()) << "truncated shard blob loaded";
    std::filesystem::remove(blob);
    ShardedIndex loaded2;
    EXPECT_FALSE(loaded2.Load(dir).ok()) << "missing shard blob loaded";
  }
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace rabitq
