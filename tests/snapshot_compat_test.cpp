// Snapshot format compatibility: the committed v1 golden file (written by
// the pre-lifecycle code, magic "RBQIVF01") must keep loading, and the v2
// format ("RBQIVF02") must round-trip a mutated index -- tombstones, stale
// update entries and all -- with bit-identical search results.

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "index/ivf.h"
#include "util/prng.h"

#ifndef RABITQ_TEST_DATA_DIR
#define RABITQ_TEST_DATA_DIR "tests/data"
#endif

namespace rabitq {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

// Mirrors the generator that produced tests/data/golden_v1.rbq: 200 x 16
// Gaussian vectors from Rng(123), 8 lists, default RabitqConfig.
constexpr std::size_t kGoldenN = 200;
constexpr std::size_t kGoldenDim = 16;
constexpr std::size_t kGoldenLists = 8;
constexpr std::size_t kGoldenBits = 64;

void ExpectSameNeighbors(const std::vector<Neighbor>& a,
                         const std::vector<Neighbor>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].second, b[i].second) << "rank " << i;
    EXPECT_EQ(a[i].first, b[i].first) << "rank " << i;
  }
}

std::vector<std::vector<Neighbor>> SearchAll(const IvfRabitqIndex& index,
                                             const IvfSearchParams& params) {
  Rng qrng(5150);
  std::vector<std::vector<Neighbor>> out;
  for (std::size_t q = 0; q < 10; ++q) {
    std::vector<float> query(index.dim());
    for (auto& v : query) v = static_cast<float>(qrng.Gaussian());
    std::vector<Neighbor> result;
    EXPECT_TRUE(index.Search(query.data(), params, /*seed=*/9000 + q, &result)
                    .ok());
    out.push_back(std::move(result));
  }
  return out;
}

TEST(SnapshotCompatTest, V1GoldenFileLoads) {
  IvfRabitqIndex index;
  const std::string golden =
      std::string(RABITQ_TEST_DATA_DIR) + "/golden_v1.rbq";
  ASSERT_TRUE(index.Load(golden).ok()) << "cannot load v1 golden " << golden;
  EXPECT_EQ(index.size(), kGoldenN);
  EXPECT_EQ(index.dim(), kGoldenDim);
  EXPECT_EQ(index.num_lists(), kGoldenLists);
  EXPECT_EQ(index.encoder().total_bits(), kGoldenBits);
  // v1 predates tombstones: everything is live.
  EXPECT_EQ(index.live_size(), kGoldenN);
  EXPECT_EQ(index.num_tombstones(), 0u);

  // Every id is live in exactly one list, and a full-probe self-search
  // finds each sampled vector at distance ~0.
  std::size_t total_entries = 0;
  for (std::size_t l = 0; l < index.num_lists(); ++l) {
    total_entries += index.list_ids(l).size();
    EXPECT_EQ(index.list_tombstones(l), 0u);
  }
  EXPECT_EQ(total_entries, kGoldenN);
  IvfSearchParams params;
  params.k = 1;
  params.nprobe = index.num_lists();
  for (std::uint32_t id = 0; id < kGoldenN; id += 37) {
    std::vector<Neighbor> out;
    ASSERT_TRUE(index.Search(index.vector(id), params, id, &out).ok());
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].second, id);
    EXPECT_NEAR(out[0].first, 0.0f, 1e-5f);
  }
}

TEST(SnapshotCompatTest, V1GoldenSurvivesV2RoundTripBitIdentically) {
  IvfRabitqIndex v1;
  ASSERT_TRUE(
      v1.Load(std::string(RABITQ_TEST_DATA_DIR) + "/golden_v1.rbq").ok());
  IvfSearchParams params;
  params.k = 10;
  params.nprobe = 4;
  const auto before = SearchAll(v1, params);

  const std::string path = TempPath("golden_as_v2.rbq");
  ASSERT_TRUE(v1.Save(path).ok());  // rewrites in the current (v2) format
  IvfRabitqIndex v2;
  ASSERT_TRUE(v2.Load(path).ok());
  const auto after = SearchAll(v2, params);
  for (std::size_t q = 0; q < before.size(); ++q) {
    ExpectSameNeighbors(before[q], after[q]);
  }
  std::remove(path.c_str());
}

TEST(SnapshotCompatTest, MutatedIndexRoundTripsBitIdentically) {
  // Build, then mutate: deletes, updates (which leave stale tombstoned
  // entries in their old lists) and fresh appends.
  Rng rng(2024);
  Matrix data(600, 24);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data.data()[i] = static_cast<float>(rng.Gaussian());
  }
  IvfRabitqIndex index;
  IvfConfig ivf;
  ivf.num_lists = 12;
  ASSERT_TRUE(index.Build(data, ivf, RabitqConfig{}).ok());
  for (std::uint32_t id = 0; id < 600; id += 3) {
    ASSERT_TRUE(index.Delete(id).ok());
  }
  std::vector<float> vec(24);
  // Step 51 keeps id = 1 (mod 3), dodging the ids deleted above.
  for (std::uint32_t id = 1; id < 600; id += 51) {
    for (auto& v : vec) v = static_cast<float>(rng.Gaussian()) * 3.0f;
    ASSERT_TRUE(index.Update(id, vec.data()).ok());
  }
  for (int i = 0; i < 20; ++i) {
    for (auto& v : vec) v = static_cast<float>(rng.Gaussian());
    ASSERT_TRUE(index.Add(vec.data()).ok());
  }
  ASSERT_GT(index.num_tombstones(), 0u);

  IvfSearchParams params;
  params.k = 10;
  params.nprobe = 12;
  const auto before = SearchAll(index, params);

  const std::string path = TempPath("mutated_v2.rbq");
  ASSERT_TRUE(index.Save(path).ok());
  IvfRabitqIndex loaded;
  ASSERT_TRUE(loaded.Load(path).ok());

  // Lifecycle accounting survives the round trip...
  EXPECT_EQ(loaded.size(), index.size());
  EXPECT_EQ(loaded.live_size(), index.live_size());
  EXPECT_EQ(loaded.num_tombstones(), index.num_tombstones());
  for (std::size_t l = 0; l < index.num_lists(); ++l) {
    EXPECT_EQ(loaded.list_tombstones(l), index.list_tombstones(l));
    EXPECT_EQ(loaded.list_ids(l), index.list_ids(l));
  }
  for (std::uint32_t id = 0; id < index.size(); ++id) {
    EXPECT_EQ(loaded.IsDeleted(id), index.IsDeleted(id)) << "id " << id;
  }

  // ...and search results are bit-identical.
  const auto after = SearchAll(loaded, params);
  for (std::size_t q = 0; q < before.size(); ++q) {
    ExpectSameNeighbors(before[q], after[q]);
  }

  // The reloaded index keeps mutating correctly: compaction drains the
  // restored tombstones and the results stay bit-identical.
  ASSERT_TRUE(loaded.Compact().ok());
  EXPECT_EQ(loaded.num_tombstones(), 0u);
  const auto compacted = SearchAll(loaded, params);
  for (std::size_t q = 0; q < before.size(); ++q) {
    ExpectSameNeighbors(before[q], compacted[q]);
  }
  std::remove(path.c_str());
}

// Regression: repeated updates of one id leave that id's lists with far
// more (tombstoned) entries than the index has vectors; the v2 loader's
// per-list sanity bound must come from the stored entry total, not from n.
TEST(SnapshotCompatTest, HeavilyUpdatedTinyIndexRoundTrips) {
  Rng rng(9);
  Matrix data(4, 8);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data.data()[i] = static_cast<float>(rng.Gaussian());
  }
  IvfRabitqIndex index;
  IvfConfig ivf;
  ivf.num_lists = 2;
  ASSERT_TRUE(index.Build(data, ivf, RabitqConfig{}).ok());
  std::vector<float> vec(8);
  for (int round = 0; round < 10; ++round) {
    for (auto& v : vec) v = static_cast<float>(rng.Gaussian());
    ASSERT_TRUE(index.Update(0, vec.data()).ok());
  }
  ASSERT_EQ(index.num_tombstones(), 10u);

  const std::string path = TempPath("tiny_updated.rbq");
  ASSERT_TRUE(index.Save(path).ok());
  IvfRabitqIndex loaded;
  ASSERT_TRUE(loaded.Load(path).ok());
  EXPECT_EQ(loaded.size(), 4u);
  EXPECT_EQ(loaded.live_size(), 4u);
  EXPECT_EQ(loaded.num_tombstones(), 10u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace rabitq
