// Tests for the IVF-PQ/OPQ baseline index: both execution modes (x8 LUT in
// RAM, x4fs fast-scan), re-ranking budget, recall sanity, and the OPQ path.

#include <gtest/gtest.h>

#include "eval/ground_truth.h"
#include "eval/metrics.h"
#include "index/ivf_pq.h"
#include "linalg/vector_ops.h"
#include "util/prng.h"

namespace rabitq {
namespace {

Matrix ClusteredData(std::size_t n, std::size_t dim, std::size_t clusters,
                     std::uint64_t seed) {
  Rng rng(seed);
  Matrix centers(clusters, dim);
  for (std::size_t i = 0; i < centers.size(); ++i) {
    centers.data()[i] = static_cast<float>(rng.Gaussian()) * 8.0f;
  }
  Matrix data(n, dim);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t c = rng.UniformInt(clusters);
    for (std::size_t j = 0; j < dim; ++j) {
      data.At(i, j) = centers.At(c, j) + static_cast<float>(rng.Gaussian());
    }
  }
  return data;
}

struct IvfPqCase {
  int bits;
  bool use_opq;
};

class IvfPqParamTest : public ::testing::TestWithParam<IvfPqCase> {
 protected:
  static constexpr std::size_t kN = 3000;
  static constexpr std::size_t kDim = 32;

  void SetUp() override {
    const IvfPqCase c = GetParam();
    data_ = ClusteredData(kN, kDim, 16, 11);
    queries_ = ClusteredData(10, kDim, 16, 12);
    IvfPqConfig config;
    config.ivf.num_lists = 16;
    config.pq.num_segments = 16;  // M = D/2
    config.pq.bits = c.bits;
    config.pq.kmeans_iterations = 8;
    config.use_opq = c.use_opq;
    config.opq_iterations = 3;
    ASSERT_TRUE(index_.Build(data_, config).ok());
    ASSERT_TRUE(ComputeGroundTruth(data_, queries_, 10, &gt_).ok());
  }

  Matrix data_;
  Matrix queries_;
  GroundTruth gt_;
  IvfPqIndex index_;
};

TEST_P(IvfPqParamTest, PartitionCoversAllVectors) {
  std::size_t total = 0;
  for (std::size_t l = 0; l < index_.num_lists(); ++l) {
    total += index_.list_ids(l).size();
  }
  EXPECT_EQ(total, kN);
}

TEST_P(IvfPqParamTest, FullProbeWithRerankFindsNeighbors) {
  IvfPqSearchParams params;
  params.k = 10;
  params.nprobe = index_.num_lists();
  params.rerank_candidates = 300;
  double recall = 0.0;
  for (std::size_t q = 0; q < queries_.rows(); ++q) {
    std::vector<Neighbor> result;
    ASSERT_TRUE(index_.Search(queries_.Row(q), params, &result).ok());
    recall += RecallAtK(gt_, q, result, 10);
  }
  EXPECT_GE(recall / queries_.rows(), 0.9);
}

TEST_P(IvfPqParamTest, RerankedDistancesAreExactAndSorted) {
  IvfPqSearchParams params;
  params.k = 5;
  params.nprobe = index_.num_lists();
  params.rerank_candidates = 100;
  std::vector<Neighbor> result;
  ASSERT_TRUE(index_.Search(queries_.Row(0), params, &result).ok());
  for (const auto& [dist, id] : result) {
    EXPECT_FLOAT_EQ(dist,
                    L2SqrDistance(queries_.Row(0), data_.Row(id), kDim));
  }
  for (std::size_t i = 1; i < result.size(); ++i) {
    EXPECT_LE(result[i - 1].first, result[i].first);
  }
}

TEST_P(IvfPqParamTest, EstimatesCorrelateWithTrueDistances) {
  // Spot-check the estimation path through EstimateList: better than random
  // ordering -- correlation with the truth should be clearly positive.
  IvfPqIndex::QueryLuts luts;
  index_.PrepareQueryLuts(queries_.Row(0), &luts);
  std::vector<double> est_all, true_all;
  std::vector<float> estimates;
  for (std::size_t l = 0; l < index_.num_lists(); ++l) {
    if (index_.list_ids(l).empty()) continue;
    index_.EstimateList(l, luts, &estimates);
    for (std::size_t i = 0; i < estimates.size(); ++i) {
      est_all.push_back(estimates[i]);
      true_all.push_back(L2SqrDistance(
          queries_.Row(0), data_.Row(index_.list_ids(l)[i]), kDim));
    }
  }
  const LinearFit fit = FitLinear(true_all, est_all);
  EXPECT_GT(fit.r2, 0.5);
  EXPECT_GT(fit.slope, 0.3);
}

INSTANTIATE_TEST_SUITE_P(Modes, IvfPqParamTest,
                         ::testing::Values(IvfPqCase{8, false},
                                           IvfPqCase{4, false},
                                           IvfPqCase{8, true},
                                           IvfPqCase{4, true}));

TEST(IvfPqTest, NoRerankReturnsEstimatedDistances) {
  Matrix data = ClusteredData(1000, 16, 8, 21);
  IvfPqConfig config;
  config.ivf.num_lists = 8;
  config.pq.num_segments = 8;
  config.pq.bits = 4;
  IvfPqIndex index;
  ASSERT_TRUE(index.Build(data, config).ok());
  IvfPqSearchParams params;
  params.k = 10;
  params.nprobe = 8;
  params.rerank_candidates = 0;
  std::vector<Neighbor> result;
  ASSERT_TRUE(index.Search(data.Row(0), params, &result).ok());
  EXPECT_EQ(result.size(), 10u);
}

TEST(IvfPqTest, RejectsBadArguments) {
  IvfPqIndex index;
  EXPECT_FALSE(index.Build(Matrix(), IvfPqConfig{}).ok());
  Matrix data = ClusteredData(200, 16, 4, 22);
  IvfPqConfig config;
  config.ivf.num_lists = 4;
  config.pq.num_segments = 8;
  config.pq.bits = 4;
  ASSERT_TRUE(index.Build(data, config).ok());
  std::vector<Neighbor> out;
  IvfPqSearchParams params;
  params.k = 0;
  EXPECT_FALSE(index.Search(data.Row(0), params, &out).ok());
  params.k = 1;
  EXPECT_FALSE(index.Search(data.Row(0), params, nullptr).ok());
}

}  // namespace
}  // namespace rabitq
