// Engine-level observability tests: sampled per-stage tracing (sink
// delivery, stage histograms, deterministic sampling across runs) and the
// estimator-health telemetry, cross-checked against an offline replication
// of the re-rank sites in the style of error_bound_property_test.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <future>
#include <mutex>
#include <vector>

#include "core/estimator.h"
#include "core/query.h"
#include "engine/search_engine.h"
#include "index/ivf.h"
#include "linalg/vector_ops.h"
#include "util/prng.h"

namespace rabitq {
namespace {

constexpr std::size_t kN = 2000;
constexpr std::size_t kDim = 32;
constexpr std::size_t kNumLists = 16;
constexpr std::size_t kNumQueries = 16;
constexpr std::uint64_t kSeedBase = 0xBEEF;

Matrix Clustered(std::size_t n, std::size_t dim, std::uint64_t seed) {
  Rng rng(seed);
  Matrix centers(8, dim);
  for (std::size_t i = 0; i < centers.size(); ++i) {
    centers.data()[i] = static_cast<float>(rng.Gaussian()) * 4.0f;
  }
  Matrix data(n, dim);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t c = rng.UniformInt(centers.rows());
    for (std::size_t j = 0; j < dim; ++j) {
      data.At(i, j) = centers.At(c, j) + static_cast<float>(rng.Gaussian());
    }
  }
  return data;
}

IvfRabitqIndex BuildIndex(const Matrix& data, Metric metric = Metric::kL2) {
  IvfRabitqIndex index;
  IvfConfig config;
  config.num_lists = kNumLists;
  config.metric = metric;
  EXPECT_TRUE(index.Build(data, config, RabitqConfig{}).ok());
  return index;
}

// One sink capture: the resolved query seed and its per-stage nanoseconds.
struct CapturedTrace {
  std::uint64_t seed = 0;
  std::uint64_t ns[obs::kNumStages] = {};
};

class ObsTracingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    data_ = Clustered(kN, kDim, 21);
    queries_ = Clustered(kNumQueries, kDim, 22);
  }

  // Runs every query through `engine` as one synchronous batch with
  // explicit seeds QuerySeed(kSeedBase, i).
  void RunBatch(SearchEngine* engine, const IvfSearchParams& params) {
    std::vector<SearchRequest> requests(kNumQueries);
    for (std::size_t i = 0; i < kNumQueries; ++i) {
      requests[i].query = queries_.Row(i);
      requests[i].options = params;
      requests[i].options.seed = SearchEngine::QuerySeed(kSeedBase, i);
    }
    std::vector<SearchResponse> responses;
    ASSERT_TRUE(
        engine->SearchBatch(requests.data(), kNumQueries, &responses).ok());
    for (const SearchResponse& response : responses) {
      ASSERT_TRUE(response.status.ok());
    }
  }

  Matrix data_;
  Matrix queries_;
};

TEST_F(ObsTracingTest, SinkReceivesEveryQueryAtPeriodOne) {
  std::mutex mutex;
  std::vector<CapturedTrace> captured;
  EngineConfig config;
  config.num_threads = 2;
  config.trace_sample_period = 1;
  config.trace_sink = [&](std::uint64_t seed, const obs::QueryTrace& trace) {
    std::lock_guard<std::mutex> lock(mutex);
    CapturedTrace ct;
    ct.seed = seed;
    for (int s = 0; s < obs::kNumStages; ++s) {
      ct.ns[s] = trace.Nanos(static_cast<obs::Stage>(s));
    }
    captured.push_back(ct);
  };
  SearchEngine engine(BuildIndex(data_), config);
  IvfSearchParams params;
  params.k = 10;
  params.nprobe = 8;
  RunBatch(&engine, params);

  ASSERT_EQ(captured.size(), kNumQueries);
  for (std::size_t i = 0; i < kNumQueries; ++i) {
    // The batch fold walks queries in order, so seeds arrive in order.
    EXPECT_EQ(captured[i].seed, SearchEngine::QuerySeed(kSeedBase, i));
    // Every query probes lists and scans codes: those spans measured real
    // work. (Re-rank/merge may legitimately round to ~0 on a tiny index.)
    EXPECT_GT(captured[i].ns[static_cast<int>(obs::Stage::kProbeOrder)], 0u);
    EXPECT_GT(captured[i].ns[static_cast<int>(obs::Stage::kScan)], 0u);
    EXPECT_GT(captured[i].ns[static_cast<int>(obs::Stage::kPreprocess)], 0u);
    // Synchronous SearchBatch never queues.
    EXPECT_EQ(captured[i].ns[static_cast<int>(obs::Stage::kQueueWait)], 0u);
  }

  const obs::MetricsSnapshot metrics = engine.SnapshotMetrics();
  const obs::MetricValue* traced = metrics.Find("rabitq_traced_queries_total");
  ASSERT_NE(traced, nullptr);
  EXPECT_EQ(traced->u64, kNumQueries);
  const obs::MetricValue* scan_hist = metrics.Find("rabitq_stage_scan_us");
  ASSERT_NE(scan_hist, nullptr);
  EXPECT_EQ(scan_hist->hist.count, kNumQueries);
  EXPECT_GT(scan_hist->hist.sum, 0.0);
}

TEST_F(ObsTracingTest, AsyncSubmissionRecordsQueueWait) {
  EngineConfig config;
  config.num_threads = 2;
  config.trace_sample_period = 1;
  SearchEngine engine(BuildIndex(data_), config);
  IvfSearchParams params;
  params.k = 10;
  params.nprobe = 8;
  std::vector<std::future<SearchResponse>> futures;
  for (std::size_t i = 0; i < 32; ++i) {
    SearchRequest request{queries_.Row(i % kNumQueries), params};
    request.options.seed = SearchEngine::QuerySeed(kSeedBase, i);
    futures.push_back(engine.SubmitAsync(request));
  }
  for (auto& f : futures) ASSERT_TRUE(f.get().status.ok());

  const obs::MetricsSnapshot metrics = engine.SnapshotMetrics();
  const obs::MetricValue* queue_hist =
      metrics.Find("rabitq_stage_queue_wait_us");
  ASSERT_NE(queue_hist, nullptr);
  // Enqueue -> scheduler pickup is never instantaneous for a whole stream.
  EXPECT_GE(queue_hist->hist.count, 1u);
}

TEST_F(ObsTracingTest, SampledSubsetIsDeterministicAcrossRuns) {
  constexpr std::uint32_t kPeriod = 4;
  IvfSearchParams params;
  params.k = 10;
  params.nprobe = 8;

  auto run = [&]() {
    std::mutex mutex;
    std::vector<std::uint64_t> seeds;
    EngineConfig config;
    config.num_threads = 2;
    config.trace_sample_period = kPeriod;
    config.trace_sink = [&](std::uint64_t seed, const obs::QueryTrace&) {
      std::lock_guard<std::mutex> lock(mutex);
      seeds.push_back(seed);
    };
    SearchEngine engine(BuildIndex(data_), config);
    RunBatch(&engine, params);
    return seeds;
  };

  const std::vector<std::uint64_t> first = run();
  const std::vector<std::uint64_t> second = run();
  // The sampling decision is a pure function of the query seed, so two
  // identical workloads trace exactly the same subset in the same order.
  EXPECT_EQ(first, second);
  // And it matches the pure predicate directly.
  std::vector<std::uint64_t> expected;
  for (std::size_t i = 0; i < kNumQueries; ++i) {
    const std::uint64_t seed = SearchEngine::QuerySeed(kSeedBase, i);
    if (obs::SampleTrace(seed, kPeriod)) expected.push_back(seed);
  }
  EXPECT_EQ(first, expected);
  EXPECT_LT(first.size(), kNumQueries);  // period 4 must not trace everything
}

// Estimator-health cross-check: serve a workload where EVERY live candidate
// is re-ranked (k > N, so the exact heap never fills and the bound check
// never prunes; the scalar estimator keeps the offline math identical),
// then replicate the per-candidate accumulation offline exactly like
// error_bound_property_test replicates the bound math. Runs under kL2 AND
// kInnerProduct: negative IP scores are where the tightness gauge used to
// flip direction (dividing the lower bound by a signed exact), so the IP
// leg pins the corrected 1 - (exact - lb)/|exact| normalization.
TEST_F(ObsTracingTest, HealthTelemetryMatchesOfflineReplication) {
  for (const Metric metric : {Metric::kL2, Metric::kInnerProduct}) {
    EngineConfig config;
    config.num_threads = 2;
    config.trace_sample_period = 0;
    SearchEngine engine(BuildIndex(data_, metric), config);
    IvfSearchParams params;
    params.k = kN + 10;
    params.nprobe = kNumLists;
    params.use_batch_estimator = false;  // scalar estimates, replicable below

    RunBatch(&engine, params);
    const EngineStatsSnapshot stats = engine.Stats();

    // Offline replication against the very index the engine serves (no
    // writers exist, so reading internals is within contract).
    const IvfRabitqIndex& index = engine.index().shard(0);
    const RabitqEncoder& encoder = index.encoder();
    const float epsilon0 = encoder.config().epsilon0;
    std::uint64_t candidates = 0, violations = 0, samples = 0;
    double signed_err_sum = 0.0, tightness_sum = 0.0;
    std::vector<float> rotated(encoder.total_bits());
    QuantizedQuery qq;
    for (std::size_t q = 0; q < kNumQueries; ++q) {
      const float* query = queries_.Row(q);
      const std::uint64_t seed = SearchEngine::QuerySeed(kSeedBase, q);
      const float query_norm_sq =
          metric == Metric::kL2 ? 0.0f : SquaredNorm(query, index.dim());
      RotateQueryOnce(encoder, query, rotated.data());
      const auto order = index.ProbeOrderWithDistances(query);
      for (const auto& [centroid_key, list_id] : order) {
        const auto& ids = index.list_ids(list_id);
        if (ids.empty()) continue;
        Rng list_rng(MixSeed(seed, list_id));
        // q_dist = ||q - c||: under kL2 the probe key is that squared
        // distance; under IP it is a negated dot product, so recompute.
        const float q_dist =
            metric == Metric::kL2
                ? std::sqrt(std::max(0.0f, centroid_key))
                : std::sqrt(std::max(
                      0.0f, L2SqrDistance(query, index.centroids().Row(list_id),
                                          index.dim())));
        ASSERT_TRUE(PrepareQueryFromRotated(
                        encoder, rotated.data(),
                        index.rotated_centroids().Row(list_id), q_dist,
                        &list_rng, &qq, /*query_bits_override=*/0, metric,
                        query_norm_sq)
                        .ok());
        for (std::size_t i = 0; i < ids.size(); ++i) {
          const DistanceEstimate est = EstimateDistance(
              qq, index.list_codes(list_id).View(i), epsilon0);
          const float exact =
              MetricDistance(metric, index.vector(ids[i]), query, index.dim());
          ++candidates;
          violations += exact < est.lower_bound_sq;
          if (exact != 0.0f) {
            ++samples;
            const double inv = 1.0 / std::abs(static_cast<double>(exact));
            signed_err_sum +=
                (static_cast<double>(est.dist_sq) - exact) * inv;
            tightness_sum +=
                1.0 -
                (exact - static_cast<double>(est.lower_bound_sq)) * inv;
          }
        }
      }
    }

    EXPECT_EQ(stats.candidates_reranked, candidates);
    EXPECT_EQ(stats.rerank_bound_violations, violations);
    EXPECT_EQ(stats.rerank_health_samples, samples);
    ASSERT_GT(samples, 0u);
    const double expected_rate =
        static_cast<double>(violations) / static_cast<double>(candidates);
    EXPECT_NEAR(stats.eps0_violation_rate, expected_rate, 1e-12);
    EXPECT_NEAR(stats.rerank_signed_err_mean,
                signed_err_sum / static_cast<double>(samples),
                1e-9 * std::max(1.0, std::abs(signed_err_sum)));
    EXPECT_NEAR(stats.rerank_bound_tightness_mean,
                tightness_sum / static_cast<double>(samples),
                1e-9 * std::max(1.0, std::abs(tightness_sum)));
    // Sanity on the telemetry itself: at the paper's eps0 = 1.9 the
    // one-sided violation rate tracks P(Z > 1.9) ~ 2.9%; anything past 8%
    // means the live bound is broken (cf. error_bound_property_test).
    EXPECT_LT(stats.eps0_violation_rate, 0.08);
    // Tightness reads "1 = bound hugging the true score" under every
    // metric; overshoot past 1 is capped by the rare bound violation.
    EXPECT_LT(stats.rerank_bound_tightness_mean, 1.05);
    if (metric == Metric::kL2) {
      // L2 scores are positive and the gap is at most the score itself on
      // average, so the historical (0, 1]-ish band still applies.
      EXPECT_GT(stats.rerank_bound_tightness_mean, 0.0);
    }

    // The same numbers flow out through the gauges after SnapshotMetrics.
    const obs::MetricsSnapshot metrics = engine.SnapshotMetrics();
    const obs::MetricValue* rate = metrics.Find("rabitq_eps0_violation_rate");
    ASSERT_NE(rate, nullptr);
    EXPECT_NEAR(rate->value, expected_rate, 1e-12);
    const obs::MetricValue* reranked =
        metrics.Find("rabitq_candidates_reranked_total");
    ASSERT_NE(reranked, nullptr);
    EXPECT_EQ(reranked->u64, candidates);
  }
}

}  // namespace
}  // namespace rabitq
