// Overload-robustness tests for the serving engine: bounded admission
// (queue-full fast failure), deadline shedding of queued requests, partial
// results for expired/mid-scan deadlines, bit-safety of the deadline checks
// (a deadline that never trips must not perturb results), and graceful
// Drain() semantics -- including a drain racing concurrent submitters,
// which the CI ThreadSanitizer job runs.
//
// The queue tests need the scheduler WEDGED so submissions pile up
// deterministically. A filter predicate doubles as a gate: the first
// blocker query parks the scheduler's one in-flight batch inside the scan
// until the test opens the gate. No sleeps are load-bearing for the
// accept/reject counts -- once the gate reports the scheduler entered the
// scan, rejection is a pure function of queue capacity.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "engine/search_engine.h"
#include "index/ivf.h"
#include "index/sharded.h"
#include "linalg/vector_ops.h"
#include "util/prng.h"

namespace rabitq {
namespace {

Matrix ClusteredData(std::size_t n, std::size_t dim, std::size_t clusters,
                     std::uint64_t seed) {
  Rng rng(seed);
  Matrix centers(clusters, dim);
  for (std::size_t i = 0; i < centers.size(); ++i) {
    centers.data()[i] = static_cast<float>(rng.Gaussian()) * 8.0f;
  }
  Matrix data(n, dim);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t c = rng.UniformInt(clusters);
    for (std::size_t j = 0; j < dim; ++j) {
      data.At(i, j) = centers.At(c, j) + static_cast<float>(rng.Gaussian());
    }
  }
  return data;
}

IvfRabitqIndex BuildIndex(const Matrix& data, std::size_t num_lists) {
  IvfRabitqIndex index;
  IvfConfig ivf;
  ivf.num_lists = num_lists;
  EXPECT_TRUE(index.Build(data, ivf, RabitqConfig{}).ok());
  return index;
}

void ExpectSameNeighbors(const std::vector<Neighbor>& a,
                         const std::vector<Neighbor>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].second, b[i].second) << "rank " << i;
    EXPECT_EQ(a[i].first, b[i].first) << "rank " << i;
  }
}

// A filter predicate that blocks its first caller until Open(): submitted
// with one "blocker" query, it wedges the scheduler mid-batch so the test
// can fill the queue behind it. Thread-safe (the predicate contract).
struct Gate {
  std::mutex m;
  std::condition_variable cv;
  bool open = false;
  std::atomic<bool> entered{false};

  static bool BlockUntilOpen(void* context, std::uint32_t /*id*/) {
    Gate* gate = static_cast<Gate*>(context);
    gate->entered.store(true, std::memory_order_release);
    std::unique_lock<std::mutex> lock(gate->m);
    gate->cv.wait(lock, [gate] { return gate->open; });
    return true;
  }

  void Open() {
    {
      std::lock_guard<std::mutex> lock(m);
      open = true;
    }
    cv.notify_all();
  }

  void AwaitEntered() {
    while (!entered.load(std::memory_order_acquire)) {
      std::this_thread::yield();
    }
  }
};

class OverloadTest : public ::testing::Test {
 protected:
  static constexpr std::size_t kN = 1024;
  static constexpr std::size_t kDim = 24;

  void SetUp() override {
    data_ = ClusteredData(kN, kDim, 10, 7);
    queries_ = ClusteredData(16, kDim, 10, 8);
    params_.k = 10;
    params_.nprobe = 6;
  }

  // An engine whose scheduler serves one query at a time with no lingering,
  // so a gate-blocked batch wedges it completely.
  SearchEngine MakeWedgeableEngine(std::size_t max_queue_depth) {
    EngineConfig config;
    config.num_threads = 2;
    config.max_batch = 1;
    config.batch_linger_us = 0;
    config.max_queue_depth = max_queue_depth;
    return SearchEngine(BuildIndex(data_, 8), config);
  }

  SearchRequest PlainRequest(std::size_t qi) const {
    SearchRequest request;
    request.query = queries_.Row(qi);
    request.options = params_;
    return request;
  }

  Matrix data_;
  Matrix queries_;
  IvfSearchParams params_;
};

// The pinned regression for bounded admission: with the scheduler wedged, a
// flood of submissions is accepted up to EXACTLY max_queue_depth and every
// excess request fails fast with kResourceExhausted (and counts in stats)
// instead of growing the backlog without limit.
TEST_F(OverloadTest, QueueFullRejectsExcessSubmissions) {
  constexpr std::size_t kDepth = 4;
  constexpr std::size_t kFlood = 32;
  SearchEngine engine = MakeWedgeableEngine(kDepth);

  Gate gate;
  SearchRequest blocker = PlainRequest(0);
  blocker.options.filter =
      IdFilter::FromPredicate(&Gate::BlockUntilOpen, &gate);
  std::future<SearchResponse> blocked = engine.SubmitAsync(blocker);
  gate.AwaitEntered();  // scheduler is now parked inside the blocker's scan

  std::vector<std::future<SearchResponse>> flood;
  flood.reserve(kFlood);
  for (std::size_t i = 0; i < kFlood; ++i) {
    flood.push_back(engine.SubmitAsync(PlainRequest(1 + i % 8)));
  }

  // Rejections resolve immediately, before the gate opens: fail-fast is the
  // point. Exactly kFlood - kDepth of them, and with a single producer and
  // a FIFO queue the accepted ones are the first kDepth.
  std::size_t rejected = 0;
  for (std::size_t i = kDepth; i < kFlood; ++i) {
    ASSERT_EQ(flood[i].wait_for(std::chrono::seconds(0)),
              std::future_status::ready)
        << "rejection " << i << " should not wait on the queue";
    const SearchResponse response = flood[i].get();
    EXPECT_EQ(response.status.code(), StatusCode::kResourceExhausted);
    EXPECT_TRUE(response.neighbors.empty());
    ++rejected;
  }
  EXPECT_EQ(rejected, kFlood - kDepth);

  gate.Open();
  EXPECT_TRUE(blocked.get().ok());
  for (std::size_t i = 0; i < kDepth; ++i) {
    const SearchResponse response = flood[i].get();
    EXPECT_TRUE(response.ok()) << response.status.message();
    EXPECT_FALSE(response.neighbors.empty());
  }

  const EngineStatsSnapshot stats = engine.Stats();
  EXPECT_EQ(stats.queries_rejected, kFlood - kDepth);
  EXPECT_EQ(stats.queries_shed, 0u);
}

// Requests whose deadline expires while they wait in the queue are shed
// unexecuted: kDeadlineExceeded, empty + partial response, shed counter.
TEST_F(OverloadTest, QueuedRequestsPastDeadlineAreShed) {
  SearchEngine engine = MakeWedgeableEngine(/*max_queue_depth=*/64);

  Gate gate;
  SearchRequest blocker = PlainRequest(0);
  blocker.options.filter =
      IdFilter::FromPredicate(&Gate::BlockUntilOpen, &gate);
  std::future<SearchResponse> blocked = engine.SubmitAsync(blocker);
  gate.AwaitEntered();

  // A 1us budget resolved at admission: long expired by the time the
  // scheduler unwedges. A no-deadline request queued behind them must still
  // be served -- shedding skips it without consuming its batch slot.
  constexpr std::size_t kDoomed = 3;
  std::vector<std::future<SearchResponse>> doomed;
  for (std::size_t i = 0; i < kDoomed; ++i) {
    SearchRequest request = PlainRequest(1 + i);
    request.options.timeout_us = 1;
    doomed.push_back(engine.SubmitAsync(request));
  }
  std::future<SearchResponse> patient = engine.SubmitAsync(PlainRequest(5));

  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  gate.Open();
  EXPECT_TRUE(blocked.get().ok());

  for (auto& future : doomed) {
    const SearchResponse response = future.get();
    EXPECT_EQ(response.status.code(), StatusCode::kDeadlineExceeded);
    EXPECT_TRUE(response.partial);
    EXPECT_TRUE(response.neighbors.empty());
  }
  const SearchResponse served = patient.get();
  EXPECT_TRUE(served.ok()) << served.status.message();
  EXPECT_FALSE(served.neighbors.empty());

  const EngineStatsSnapshot stats = engine.Stats();
  EXPECT_EQ(stats.queries_shed, kDoomed);
  EXPECT_EQ(stats.queries_rejected, 0u);
}

// An already-expired deadline on the synchronous path returns immediately:
// kDeadlineExceeded, partial, zero probes -- but a well-formed response.
TEST_F(OverloadTest, ExpiredDeadlineReturnsPartialEmptyResponse) {
  SearchEngine engine(BuildIndex(data_, 8));

  SearchRequest request = PlainRequest(0);
  request.options.deadline =
      std::chrono::steady_clock::now() - std::chrono::seconds(1);
  const SearchResponse response = engine.Search(request);
  EXPECT_EQ(response.status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_TRUE(response.partial);
  EXPECT_TRUE(response.neighbors.empty());
  EXPECT_EQ(response.stats.lists_probed, 0u);
  EXPECT_EQ(response.shards_failed, 0u);

  const EngineStatsSnapshot stats = engine.Stats();
  EXPECT_GE(stats.deadline_exceeded, 1u);
  EXPECT_GE(stats.partial_responses, 1u);
}

// Bit-safety: arming a deadline that never trips must not change a single
// bit of the results -- the checks may read the clock but never perturb the
// search state. Covers the bare-index path and the engine path.
TEST_F(OverloadTest, GenerousDeadlineIsBitIdenticalToNoDeadline) {
  IvfRabitqIndex index = BuildIndex(data_, 8);

  for (std::size_t qi = 0; qi < 8; ++qi) {
    SearchRequest plain;
    plain.query = queries_.Row(qi);
    plain.options = params_;
    plain.options.seed = 99 + qi;

    SearchRequest budgeted = plain;
    budgeted.options.timeout_us = 60ull * 1000 * 1000;  // one minute

    const SearchResponse a = index.Search(plain);
    const SearchResponse b = index.Search(budgeted);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_FALSE(b.partial);
    ExpectSameNeighbors(a.neighbors, b.neighbors);
  }

  SearchEngine engine(BuildIndex(data_, 8));
  for (std::size_t qi = 0; qi < 8; ++qi) {
    SearchRequest plain = PlainRequest(qi);
    plain.options.seed = 99 + qi;
    SearchRequest budgeted = plain;
    budgeted.options.timeout_us = 60ull * 1000 * 1000;
    const SearchResponse a = engine.Search(plain);
    const SearchResponse b = engine.Search(budgeted);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    ExpectSameNeighbors(a.neighbors, b.neighbors);
  }
}

// A deadline tripping mid-scan must degrade, not corrupt: whatever comes
// back is sorted, within k, and drawn from real ids. Run many times with a
// tiny budget so some runs stop after 0 probes and some partway through.
TEST_F(OverloadTest, MidScanDeadlineKeepsResultInvariants) {
  Matrix big = ClusteredData(4000, kDim, 16, 11);
  IvfRabitqIndex index = BuildIndex(big, 32);

  SearchOptions options = params_;
  options.nprobe = 32;
  options.seed = 1234;
  std::vector<Neighbor> reference;
  {
    SearchRequest request;
    request.query = queries_.Row(0);
    request.options = options;
    const SearchResponse full = index.Search(request);
    ASSERT_TRUE(full.ok());
    reference = full.neighbors;
  }

  for (int run = 0; run < 20; ++run) {
    SearchRequest request;
    request.query = queries_.Row(0);
    request.options = options;
    request.options.timeout_us = static_cast<std::uint64_t>(run) * 3;
    request.options.ResolveDeadline(std::chrono::steady_clock::now());
    const SearchResponse response = index.Search(request);

    ASSERT_TRUE(response.ok() ||
                response.status.code() == StatusCode::kDeadlineExceeded)
        << response.status.message();
    EXPECT_LE(response.neighbors.size(), options.k);
    for (std::size_t i = 1; i < response.neighbors.size(); ++i) {
      EXPECT_LE(response.neighbors[i - 1].first, response.neighbors[i].first);
    }
    for (const Neighbor& n : response.neighbors) {
      EXPECT_LT(n.second, big.rows());
    }
    if (response.ok()) {
      // Never tripped: must be the bit-identical full answer.
      EXPECT_FALSE(response.partial);
      ExpectSameNeighbors(reference, response.neighbors);
    } else {
      EXPECT_TRUE(response.partial);
    }
  }
}

// Drain(): already-accepted work is served, later submissions are refused,
// the synchronous path stays usable, and a second drain is a no-op.
TEST_F(OverloadTest, DrainServesAcceptedWorkThenRefusesNew) {
  EngineConfig config;
  config.num_threads = 2;
  config.max_batch = 4;
  SearchEngine engine(BuildIndex(data_, 8), config);

  std::vector<std::future<SearchResponse>> inflight;
  for (std::size_t i = 0; i < 8; ++i) {
    inflight.push_back(engine.SubmitAsync(PlainRequest(i % 8)));
  }
  engine.Drain();
  for (auto& future : inflight) {
    const SearchResponse response = future.get();
    EXPECT_TRUE(response.ok()) << response.status.message();
  }

  const SearchResponse refused = engine.SubmitAsync(PlainRequest(0)).get();
  EXPECT_EQ(refused.status.code(), StatusCode::kFailedPrecondition);

  const SearchResponse sync = engine.Search(PlainRequest(1));
  EXPECT_TRUE(sync.ok()) << sync.status.message();
  EXPECT_FALSE(sync.neighbors.empty());

  engine.Drain();  // idempotent
}

// Drain racing a herd of submitters (the TSan target): every future must
// resolve -- served, rejected at the full queue, or refused post-close --
// and nothing may deadlock or race.
TEST_F(OverloadTest, DrainDuringConcurrentSubmittersResolvesEveryFuture) {
  EngineConfig config;
  config.num_threads = 2;
  config.max_batch = 4;
  config.max_queue_depth = 32;
  SearchEngine engine(BuildIndex(data_, 8), config);

  constexpr std::size_t kThreads = 4;
  constexpr std::size_t kPerThread = 40;
  std::vector<std::vector<std::future<SearchResponse>>> futures(kThreads);
  std::vector<std::thread> submitters;
  submitters.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    submitters.emplace_back([this, &engine, &futures, t] {
      for (std::size_t i = 0; i < kPerThread; ++i) {
        futures[t].push_back(engine.SubmitAsync(PlainRequest((t + i) % 8)));
      }
    });
  }
  engine.Drain();
  for (std::thread& thread : submitters) thread.join();

  std::size_t served = 0;
  for (auto& per_thread : futures) {
    for (auto& future : per_thread) {
      const SearchResponse response = future.get();
      if (response.ok()) {
        ++served;
        EXPECT_FALSE(response.neighbors.empty());
      } else {
        EXPECT_TRUE(response.status.code() == StatusCode::kResourceExhausted ||
                    response.status.code() == StatusCode::kFailedPrecondition)
            << response.status.message();
      }
    }
  }
  // Drain serves whatever was admitted before close; the exact split with
  // the refusals is timing-dependent, but nothing may be lost and every
  // served query is accounted for.
  const EngineStatsSnapshot stats = engine.Stats();
  EXPECT_EQ(stats.queries, served);
}

}  // namespace
}  // namespace rabitq
