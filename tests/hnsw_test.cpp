// Tests for the HNSW baseline: graph invariants (degree caps, bidirectional
// reachability), recall at high ef, efSearch monotonicity, edge cases.

#include <gtest/gtest.h>

#include <queue>

#include "eval/ground_truth.h"
#include "eval/metrics.h"
#include "index/hnsw.h"
#include "linalg/vector_ops.h"
#include "util/prng.h"

namespace rabitq {
namespace {

Matrix RandomData(std::size_t n, std::size_t dim, std::uint64_t seed) {
  Rng rng(seed);
  Matrix data(n, dim);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data.data()[i] = static_cast<float>(rng.Gaussian());
  }
  return data;
}

class HnswTestFixture : public ::testing::Test {
 protected:
  static constexpr std::size_t kN = 2000;
  static constexpr std::size_t kDim = 24;

  void SetUp() override {
    data_ = RandomData(kN, kDim, 31);
    HnswConfig config;
    config.m = 12;
    config.ef_construction = 100;
    ASSERT_TRUE(index_.Build(data_, config).ok());
    queries_ = RandomData(20, kDim, 32);
    ASSERT_TRUE(ComputeGroundTruth(data_, queries_, 10, &gt_).ok());
  }

  Matrix data_;
  Matrix queries_;
  GroundTruth gt_;
  HnswIndex index_;
};

TEST_F(HnswTestFixture, HighEfSearchReachesHighRecall) {
  double recall = 0.0;
  for (std::size_t q = 0; q < queries_.rows(); ++q) {
    std::vector<Neighbor> result;
    ASSERT_TRUE(index_.Search(queries_.Row(q), 10, 400, &result).ok());
    recall += RecallAtK(gt_, q, result, 10);
  }
  EXPECT_GE(recall / queries_.rows(), 0.95);
}

TEST_F(HnswTestFixture, EfSearchImprovesRecall) {
  double recall_low = 0.0, recall_high = 0.0;
  for (std::size_t q = 0; q < queries_.rows(); ++q) {
    std::vector<Neighbor> lo, hi;
    ASSERT_TRUE(index_.Search(queries_.Row(q), 10, 10, &lo).ok());
    ASSERT_TRUE(index_.Search(queries_.Row(q), 10, 300, &hi).ok());
    recall_low += RecallAtK(gt_, q, lo, 10);
    recall_high += RecallAtK(gt_, q, hi, 10);
  }
  EXPECT_GE(recall_high, recall_low);
  EXPECT_GT(recall_high, 0.0);
}

TEST_F(HnswTestFixture, ResultsSortedWithExactDistances) {
  std::vector<Neighbor> result;
  ASSERT_TRUE(index_.Search(queries_.Row(0), 10, 100, &result).ok());
  ASSERT_FALSE(result.empty());
  for (std::size_t i = 0; i < result.size(); ++i) {
    EXPECT_FLOAT_EQ(result[i].first,
                    L2SqrDistance(queries_.Row(0),
                                  data_.Row(result[i].second), kDim));
    if (i > 0) {
      EXPECT_LE(result[i - 1].first, result[i].first);
    }
  }
}

TEST_F(HnswTestFixture, SelfQueryFindsSelf) {
  for (std::size_t i = 0; i < 50; i += 7) {
    std::vector<Neighbor> result;
    ASSERT_TRUE(index_.Search(data_.Row(i), 1, 60, &result).ok());
    ASSERT_FALSE(result.empty());
    EXPECT_NEAR(result[0].first, 0.0f, 1e-6f);
  }
}

TEST(HnswTest, SinglePointIndex) {
  Matrix data = RandomData(1, 8, 1);
  HnswIndex index;
  ASSERT_TRUE(index.Build(data, HnswConfig{}).ok());
  std::vector<Neighbor> result;
  ASSERT_TRUE(index.Search(data.Row(0), 5, 10, &result).ok());
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(result[0].second, 0u);
}

TEST(HnswTest, TinyDatasetExactlyRecovered) {
  Matrix data = RandomData(40, 8, 2);
  HnswIndex index;
  HnswConfig config;
  config.m = 8;
  config.ef_construction = 40;
  ASSERT_TRUE(index.Build(data, config).ok());
  GroundTruth gt;
  ASSERT_TRUE(ComputeGroundTruth(data, data, 5, &gt).ok());
  for (std::size_t q = 0; q < data.rows(); ++q) {
    std::vector<Neighbor> result;
    ASSERT_TRUE(index.Search(data.Row(q), 5, 40, &result).ok());
    EXPECT_GE(RecallAtK(gt, q, result, 5), 0.99) << "query " << q;
  }
}

// Regression for the hardcoded-L2 bug: an index built with
// metric = kInnerProduct must rank by (negated) inner product -- graph
// edges, search comparisons and returned keys alike -- not silently by L2.
TEST(HnswTest, InnerProductSearchMatchesMetricOracle) {
  const std::size_t n = 800, dim = 16, k = 10;
  Matrix data = RandomData(n, dim, 41);
  Matrix queries = RandomData(15, dim, 42);
  HnswConfig config;
  config.m = 12;
  config.ef_construction = 150;
  config.metric = Metric::kInnerProduct;
  HnswIndex index;
  ASSERT_TRUE(index.Build(data, config).ok());

  GroundTruth gt;
  ASSERT_TRUE(
      ComputeGroundTruth(data, queries, k, Metric::kInnerProduct, &gt).ok());
  double recall = 0.0;
  std::size_t metric_disagreements = 0;
  for (std::size_t q = 0; q < queries.rows(); ++q) {
    std::vector<Neighbor> result;
    ASSERT_TRUE(index.Search(queries.Row(q), k, 400, &result).ok());
    recall += RecallAtK(gt, q, result, k);
    // Returned keys are the metric's own scores (negated inner products).
    for (const Neighbor& nb : result) {
      EXPECT_EQ(nb.first, MetricDistance(Metric::kInnerProduct,
                                         data.Row(nb.second), queries.Row(q),
                                         dim));
    }
    // Where the IP and L2 top-1 disagree, the index must side with IP --
    // the exact situation the hardcoded-L2 graph got wrong.
    const std::vector<Neighbor> l2_top =
        BruteForceSearch(data, queries.Row(q), 1, Metric::kL2);
    if (!result.empty() && gt.IdsFor(q)[0] != l2_top[0].second) {
      ++metric_disagreements;
      EXPECT_EQ(result[0].second, gt.IdsFor(q)[0]) << "query " << q;
    }
  }
  EXPECT_GE(recall / queries.rows(), 0.9);
  EXPECT_GT(metric_disagreements, 0u)
      << "test data never separates IP from L2; weaken seed";
}

// kCosine fails closed at Build: the baseline does not normalize on ingest,
// so treating cosine as IP would rank by magnitude.
TEST(HnswTest, CosineBuildFailsClosed) {
  HnswConfig config;
  config.metric = Metric::kCosine;
  HnswIndex index;
  const Status status = index.Build(RandomData(20, 8, 5), config);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

TEST(HnswTest, RejectsBadArguments) {
  HnswIndex index;
  EXPECT_FALSE(index.Build(Matrix(), HnswConfig{}).ok());
  HnswConfig bad;
  bad.m = 1;
  EXPECT_FALSE(index.Build(RandomData(10, 4, 3), bad).ok());
  std::vector<Neighbor> out;
  EXPECT_FALSE(index.Search(nullptr, 1, 1, &out).ok());  // not built yet
}

}  // namespace
}  // namespace rabitq
