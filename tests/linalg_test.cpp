// Unit and property tests for the linalg substrate: SIMD vector kernels
// cross-checked against scalar references, matrix algebra, random orthogonal
// sampling, Jacobi eigendecomposition, SVD and Procrustes.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "linalg/eigen.h"
#include "linalg/matrix.h"
#include "linalg/orthogonal.h"
#include "linalg/vector_ops.h"
#include "util/prng.h"

namespace rabitq {
namespace {

std::vector<float> RandomVec(std::size_t dim, Rng* rng, float scale = 1.0f) {
  std::vector<float> v(dim);
  for (auto& x : v) x = static_cast<float>(rng->Gaussian()) * scale;
  return v;
}

// ---------- vector kernels (SIMD vs scalar, parameterized over dim) ----------

class VectorOpsParamTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(VectorOpsParamTest, DotMatchesScalar) {
  const std::size_t dim = GetParam();
  Rng rng(dim * 31 + 1);
  const auto a = RandomVec(dim, &rng);
  const auto b = RandomVec(dim, &rng);
  const float simd = Dot(a.data(), b.data(), dim);
  const float ref = scalar::Dot(a.data(), b.data(), dim);
  EXPECT_NEAR(simd, ref, 1e-3f * (1.0f + std::fabs(ref)));
}

TEST_P(VectorOpsParamTest, L2SqrMatchesScalar) {
  const std::size_t dim = GetParam();
  Rng rng(dim * 31 + 2);
  const auto a = RandomVec(dim, &rng);
  const auto b = RandomVec(dim, &rng);
  const float simd = L2SqrDistance(a.data(), b.data(), dim);
  const float ref = scalar::L2SqrDistance(a.data(), b.data(), dim);
  EXPECT_NEAR(simd, ref, 1e-3f * (1.0f + ref));
}

TEST_P(VectorOpsParamTest, L1NormMatchesScalar) {
  const std::size_t dim = GetParam();
  Rng rng(dim * 31 + 3);
  const auto a = RandomVec(dim, &rng);
  EXPECT_NEAR(L1Norm(a.data(), dim), scalar::L1Norm(a.data(), dim),
              1e-3f * (1.0f + dim));
}

INSTANTIATE_TEST_SUITE_P(Dims, VectorOpsParamTest,
                         ::testing::Values(1, 3, 7, 8, 15, 16, 17, 31, 32, 63,
                                           64, 100, 128, 255, 960));

TEST(VectorOpsTest, SubtractAxpyScale) {
  const std::size_t dim = 10;
  std::vector<float> a(dim, 3.0f), b(dim, 1.0f), out(dim);
  Subtract(a.data(), b.data(), out.data(), dim);
  for (const float v : out) EXPECT_FLOAT_EQ(v, 2.0f);
  Axpy(2.0f, b.data(), out.data(), dim);
  for (const float v : out) EXPECT_FLOAT_EQ(v, 4.0f);
  ScaleInPlace(out.data(), 0.25f, dim);
  for (const float v : out) EXPECT_FLOAT_EQ(v, 1.0f);
}

TEST(VectorOpsTest, NormalizeProducesUnitNorm) {
  Rng rng(8);
  auto v = RandomVec(50, &rng, 4.0f);
  const float original = Norm(v.data(), 50);
  const float returned = NormalizeInPlace(v.data(), 50);
  EXPECT_FLOAT_EQ(returned, original);
  EXPECT_NEAR(Norm(v.data(), 50), 1.0f, 1e-5f);
}

TEST(VectorOpsTest, NormalizeZeroVectorIsNoOp) {
  std::vector<float> v(8, 0.0f);
  EXPECT_FLOAT_EQ(NormalizeInPlace(v.data(), 8), 0.0f);
  for (const float x : v) EXPECT_FLOAT_EQ(x, 0.0f);
}

// ---------- matrix algebra ----------

TEST(MatrixTest, MatVecAgainstManual) {
  Matrix m(2, 3);
  float vals[6] = {1, 2, 3, 4, 5, 6};
  std::copy_n(vals, 6, m.data());
  const float v[3] = {1, 0, -1};
  float out[2];
  MatVec(m, v, out);
  EXPECT_FLOAT_EQ(out[0], -2.0f);
  EXPECT_FLOAT_EQ(out[1], -2.0f);
}

TEST(MatrixTest, MatTVecIsTransposeOfMatVec) {
  Rng rng(11);
  Matrix m(5, 7);
  for (std::size_t i = 0; i < m.size(); ++i) {
    m.data()[i] = static_cast<float>(rng.Gaussian());
  }
  Matrix mt;
  Transpose(m, &mt);
  const auto v = RandomVec(5, &rng);
  std::vector<float> a(7), b(7);
  MatTVec(m, v.data(), a.data());
  MatVec(mt, v.data(), b.data());
  for (std::size_t i = 0; i < 7; ++i) EXPECT_NEAR(a[i], b[i], 1e-4f);
}

TEST(MatrixTest, MatMulAgainstManual) {
  Matrix a(2, 2), b(2, 2), out;
  const float av[4] = {1, 2, 3, 4};
  const float bv[4] = {5, 6, 7, 8};
  std::copy_n(av, 4, a.data());
  std::copy_n(bv, 4, b.data());
  MatMul(a, b, &out);
  EXPECT_FLOAT_EQ(out.At(0, 0), 19.0f);
  EXPECT_FLOAT_EQ(out.At(0, 1), 22.0f);
  EXPECT_FLOAT_EQ(out.At(1, 0), 43.0f);
  EXPECT_FLOAT_EQ(out.At(1, 1), 50.0f);
}

TEST(MatrixTest, MatTMulEqualsTransposeThenMul) {
  Rng rng(12);
  Matrix a(6, 4), b(6, 5);
  for (std::size_t i = 0; i < a.size(); ++i) {
    a.data()[i] = static_cast<float>(rng.Gaussian());
  }
  for (std::size_t i = 0; i < b.size(); ++i) {
    b.data()[i] = static_cast<float>(rng.Gaussian());
  }
  Matrix direct, at, reference;
  MatTMul(a, b, &direct);
  Transpose(a, &at);
  MatMul(at, b, &reference);
  EXPECT_LT(MaxAbsDiff(direct, reference), 1e-4f);
}

TEST(MatrixTest, TransposeTwiceIsIdentity) {
  Rng rng(13);
  Matrix m(4, 9);
  for (std::size_t i = 0; i < m.size(); ++i) {
    m.data()[i] = static_cast<float>(rng.Gaussian());
  }
  Matrix t, tt;
  Transpose(m, &t);
  Transpose(t, &tt);
  EXPECT_EQ(tt.rows(), m.rows());
  EXPECT_LT(MaxAbsDiff(m, tt), 0.0f + 1e-12f);
}

// ---------- random orthogonal sampling ----------

class OrthogonalParamTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(OrthogonalParamTest, SampledMatrixIsOrthogonal) {
  const std::size_t dim = GetParam();
  Rng rng(dim);
  Matrix p;
  ASSERT_TRUE(SampleRandomOrthogonal(dim, &rng, &p).ok());
  EXPECT_TRUE(IsOrthogonal(p, 5e-4f));
}

TEST_P(OrthogonalParamTest, RotationPreservesNormsAndInnerProducts) {
  const std::size_t dim = GetParam();
  Rng rng(dim + 1000);
  Matrix p;
  ASSERT_TRUE(SampleRandomOrthogonal(dim, &rng, &p).ok());
  const auto a = RandomVec(dim, &rng);
  const auto b = RandomVec(dim, &rng);
  std::vector<float> pa(dim), pb(dim);
  MatVec(p, a.data(), pa.data());
  MatVec(p, b.data(), pb.data());
  EXPECT_NEAR(Norm(pa.data(), dim), Norm(a.data(), dim), 1e-3f);
  EXPECT_NEAR(Dot(pa.data(), pb.data(), dim), Dot(a.data(), b.data(), dim),
              1e-2f * dim);
}

INSTANTIATE_TEST_SUITE_P(Dims, OrthogonalParamTest,
                         ::testing::Values(2, 8, 64, 128, 256));

TEST(OrthogonalTest, GramSchmidtRejectsTooManyRows) {
  Matrix m(5, 3);
  EXPECT_FALSE(GramSchmidtRows(&m).ok());
}

TEST(OrthogonalTest, SampleRejectsBadArguments) {
  Rng rng(1);
  Matrix out;
  EXPECT_FALSE(SampleRandomOrthogonal(0, &rng, &out).ok());
  EXPECT_FALSE(SampleRandomOrthogonal(4, nullptr, &out).ok());
  EXPECT_FALSE(SampleRandomOrthogonal(4, &rng, nullptr).ok());
}

// ---------- eigendecomposition / SVD / Procrustes ----------

TEST(EigenTest, DiagonalMatrixEigenvalues) {
  Matrix a(3, 3);
  a.At(0, 0) = 3.0f;
  a.At(1, 1) = 1.0f;
  a.At(2, 2) = 2.0f;
  std::vector<float> values;
  Matrix vectors;
  ASSERT_TRUE(JacobiEigenSymmetric(a, &values, &vectors).ok());
  EXPECT_NEAR(values[0], 3.0f, 1e-5f);
  EXPECT_NEAR(values[1], 2.0f, 1e-5f);
  EXPECT_NEAR(values[2], 1.0f, 1e-5f);
}

TEST(EigenTest, ReconstructsSymmetricMatrix) {
  Rng rng(21);
  const std::size_t n = 12;
  Matrix g(n, n), a;
  for (std::size_t i = 0; i < g.size(); ++i) {
    g.data()[i] = static_cast<float>(rng.Gaussian());
  }
  MatTMul(g, g, &a);  // A = G^T G is symmetric PSD
  std::vector<float> values;
  Matrix vectors;
  ASSERT_TRUE(JacobiEigenSymmetric(a, &values, &vectors).ok());
  // Reconstruct A = V^T diag(w) V (rows of `vectors` are eigenvectors).
  Matrix scaled = vectors;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) scaled.At(i, j) *= values[i];
  }
  Matrix recon;
  MatTMul(vectors, scaled, &recon);
  EXPECT_LT(MaxAbsDiff(a, recon), 2e-2f * n);
}

class SvdParamTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SvdParamTest, ReconstructsInput) {
  const std::size_t n = GetParam();
  Rng rng(n * 17);
  Matrix a(n, n);
  for (std::size_t i = 0; i < a.size(); ++i) {
    a.data()[i] = static_cast<float>(rng.Gaussian());
  }
  Matrix u, v;
  std::vector<float> s;
  ASSERT_TRUE(SvdSquare(a, &u, &s, &v).ok());
  // Singular values descending and non-negative.
  for (std::size_t i = 0; i + 1 < n; ++i) {
    EXPECT_GE(s[i] + 1e-5f, s[i + 1]);
    EXPECT_GE(s[i], 0.0f);
  }
  // A ~= U diag(s) V^T.
  Matrix us = u;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) us.At(i, j) *= s[j];
  }
  Matrix vt, recon;
  Transpose(v, &vt);
  MatMul(us, vt, &recon);
  EXPECT_LT(MaxAbsDiff(a, recon), 5e-3f * n);
  EXPECT_TRUE(IsOrthogonal(u, 5e-3f));
  EXPECT_TRUE(IsOrthogonal(v, 5e-3f));
}

INSTANTIATE_TEST_SUITE_P(Sizes, SvdParamTest, ::testing::Values(2, 5, 16, 40));

TEST(SvdTest, HandlesRankDeficientMatrix) {
  // Rank-1 matrix: outer product.
  const std::size_t n = 6;
  Matrix a(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      a.At(i, j) = static_cast<float>((i + 1)) * static_cast<float>(j + 1);
    }
  }
  Matrix u, v;
  std::vector<float> s;
  ASSERT_TRUE(SvdSquare(a, &u, &s, &v).ok());
  EXPECT_GT(s[0], 1.0f);
  for (std::size_t i = 1; i < n; ++i) EXPECT_LT(s[i], 1e-2f);
  EXPECT_TRUE(IsOrthogonal(u, 1e-2f));
}

TEST(ProcrustesTest, RecoversKnownRotation) {
  // Build M = U S V^T from a random rotation R_true: the maximizer of
  // tr(R M) for M = R_true^T is R_true... construct directly instead:
  // choose M = R_true^T; the optimal R satisfies tr(R R_true^T) = n,
  // achieved only at R = R_true.
  const std::size_t n = 10;
  Rng rng(31);
  Matrix r_true;
  ASSERT_TRUE(SampleRandomOrthogonal(n, &rng, &r_true).ok());
  Matrix m, r;
  Transpose(r_true, &m);
  ASSERT_TRUE(ProcrustesRotation(m, &r).ok());
  EXPECT_LT(MaxAbsDiff(r, r_true), 5e-3f);
}

TEST(ProcrustesTest, OutputIsAlwaysOrthogonal) {
  const std::size_t n = 8;
  Rng rng(32);
  Matrix m(n, n), r;
  for (std::size_t i = 0; i < m.size(); ++i) {
    m.data()[i] = static_cast<float>(rng.Gaussian());
  }
  ASSERT_TRUE(ProcrustesRotation(m, &r).ok());
  EXPECT_TRUE(IsOrthogonal(r, 1e-3f));
}

}  // namespace
}  // namespace rabitq
