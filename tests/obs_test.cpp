// Unit tests for the obs layer: lock-free counters/histograms (exactness
// under contention), the geometric bucket layout and interpolated quantiles
// (the fix for the old upper-edge overestimate), deterministic trace
// sampling, the metrics registry contract, and the JSON/Prometheus exports.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "engine/engine_stats.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace rabitq {
namespace obs {
namespace {

// ---------------------------------------------------------------- counters

TEST(ObsCounterTest, MultiThreadedIncrementsAreExact) {
  Counter counter;
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 100000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) counter.Increment();
    });
  }
  for (auto& t : threads) t.join();
  // Striped relaxed adds must not lose a single increment: the total is
  // exact, not approximate.
  EXPECT_EQ(counter.Value(), kThreads * kPerThread);
  counter.Reset();
  EXPECT_EQ(counter.Value(), 0u);
}

TEST(ObsCounterTest, AddAccumulates) {
  Counter counter;
  counter.Add(3);
  counter.Add(39);
  EXPECT_EQ(counter.Value(), 42u);
}

TEST(ObsFloatCounterTest, MultiThreadedSumsAreExact) {
  FloatCounter counter;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 50000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      // 0.5 is exactly representable, so per-stripe partial sums are exact
      // and the cross-stripe total has no rounding slack to hide a lost add.
      for (int i = 0; i < kPerThread; ++i) counter.Add(0.5);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_DOUBLE_EQ(counter.Value(), 0.5 * kThreads * kPerThread);
  counter.Reset();
  EXPECT_DOUBLE_EQ(counter.Value(), 0.0);
}

TEST(ObsGaugeTest, LastWriteWins) {
  Gauge gauge;
  gauge.Set(1.5);
  gauge.Set(-2.0);
  EXPECT_DOUBLE_EQ(gauge.Value(), -2.0);
  gauge.Reset();
  EXPECT_DOUBLE_EQ(gauge.Value(), 0.0);
}

// ------------------------------------------------------------- bucket math

TEST(ObsBucketTest, GeometricLayout) {
  EXPECT_EQ(BucketIndex(0.0), 0);
  EXPECT_EQ(BucketIndex(0.5), 0);
  EXPECT_EQ(BucketIndex(1.0), 0);
  // 2^(6/4) = 2.828.. <= 3 < 3.363.. = 2^(7/4)  ->  bucket 6.
  EXPECT_EQ(BucketIndex(3.0), 6);
  EXPECT_EQ(BucketIndex(1e12), kNumBuckets - 1);
  EXPECT_DOUBLE_EQ(BucketLower(0), 0.0);
  EXPECT_DOUBLE_EQ(BucketUpper(0), std::exp2(0.25));
  EXPECT_DOUBLE_EQ(BucketLower(6), std::exp2(6 / 4.0));
  EXPECT_DOUBLE_EQ(BucketUpper(6), std::exp2(7 / 4.0));
  // Adjacent buckets tile: upper(i) == lower(i+1).
  for (int i = 1; i + 1 < kNumBuckets; ++i) {
    EXPECT_DOUBLE_EQ(BucketUpper(i), BucketLower(i + 1));
  }
}

TEST(ObsBucketTest, EmptyQuantileIsZero) {
  std::uint64_t buckets[kNumBuckets] = {};
  EXPECT_DOUBLE_EQ(BucketQuantile(buckets, 0, 0.0, 0.5), 0.0);
}

// Pinned expectation for the interpolated quantile: 3.0 and 3.2 both land
// in bucket 6, so the median interpolates halfway into [2^1.5, 2^1.75).
TEST(ObsBucketTest, QuantileInterpolatesWithinBucket) {
  Histogram hist;
  hist.Record(3.0);
  hist.Record(3.2);
  const HistogramSnapshot snap = hist.Snapshot();
  const double lower = std::exp2(6 / 4.0);
  const double upper = std::exp2(7 / 4.0);
  EXPECT_DOUBLE_EQ(snap.Quantile(0.5), lower + 0.5 * (upper - lower));
  // The top quantile interpolates to the bucket's upper edge but is clamped
  // to the recorded maximum.
  EXPECT_DOUBLE_EQ(snap.Quantile(1.0), 3.2);
}

// Regression for the old upper-edge reporting: a single sample must report
// itself (clamped to max), not its bucket's upper edge (1024 for 1000).
TEST(ObsBucketTest, SingleSampleQuantileClampsToMax) {
  Histogram hist;
  hist.Record(1000.0);
  const HistogramSnapshot snap = hist.Snapshot();
  EXPECT_DOUBLE_EQ(snap.Quantile(0.5), 1000.0);
  EXPECT_DOUBLE_EQ(snap.Quantile(0.99), 1000.0);
}

TEST(ObsBucketTest, UniformMedianIsAccurate) {
  Histogram hist;
  for (int v = 1; v <= 1000; ++v) hist.Record(static_cast<double>(v));
  const double p50 = hist.Snapshot().Quantile(0.50);
  // Interpolation keeps the error well under the 19% bucket width; the old
  // upper-edge rule would sit at the far edge of the median's bucket.
  EXPECT_NEAR(p50, 500.0, 0.05 * 500.0);
}

// The engine-side value type shares the same layout and interpolation.
TEST(ObsBucketTest, LatencyHistogramMatchesObsQuantiles) {
  LatencyHistogram latency;
  Histogram hist;
  for (int v = 1; v <= 100; ++v) {
    latency.Record(static_cast<double>(v));
    hist.Record(static_cast<double>(v));
  }
  const HistogramSnapshot snap = hist.Snapshot();
  for (const double q : {0.0, 0.25, 0.5, 0.9, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(latency.Quantile(q), snap.Quantile(q)) << "q=" << q;
  }
  EXPECT_EQ(latency.count(), 100u);
  EXPECT_DOUBLE_EQ(latency.max_micros(), 100.0);
}

// --------------------------------------------------------------- histogram

TEST(ObsHistogramTest, ConcurrentRecordsAreExact) {
  Histogram hist;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&hist, t] {
      for (int i = 0; i < kPerThread; ++i) {
        hist.Record(static_cast<double>(t + 1));  // integral: sums are exact
      }
    });
  }
  for (auto& t : threads) t.join();
  const HistogramSnapshot snap = hist.Snapshot();
  EXPECT_EQ(snap.count, static_cast<std::uint64_t>(kThreads) * kPerThread);
  double expected_sum = 0.0;
  for (int t = 0; t < kThreads; ++t) expected_sum += (t + 1) * kPerThread;
  EXPECT_DOUBLE_EQ(snap.sum, expected_sum);
  EXPECT_DOUBLE_EQ(snap.max, static_cast<double>(kThreads));
}

TEST(ObsHistogramTest, MergeIsAssociative) {
  Histogram ha, hb, hc;
  for (int v = 1; v <= 10; ++v) ha.Record(static_cast<double>(v));
  for (int v = 5; v <= 200; v += 5) hb.Record(static_cast<double>(v));
  hc.Record(10000.0);
  const HistogramSnapshot a = ha.Snapshot();
  const HistogramSnapshot b = hb.Snapshot();
  const HistogramSnapshot c = hc.Snapshot();

  HistogramSnapshot left = a;   // (a + b) + c
  left.Merge(b);
  left.Merge(c);
  HistogramSnapshot bc = b;     // a + (b + c)
  bc.Merge(c);
  HistogramSnapshot right = a;
  right.Merge(bc);

  for (int i = 0; i < kNumBuckets; ++i) {
    ASSERT_EQ(left.buckets[i], right.buckets[i]) << "bucket " << i;
  }
  EXPECT_EQ(left.count, right.count);
  // Integral recordings: double sums are exact, so reassociation is too.
  EXPECT_DOUBLE_EQ(left.sum, right.sum);
  EXPECT_DOUBLE_EQ(left.max, right.max);
  EXPECT_EQ(left.count, a.count + b.count + c.count);
}

// ---------------------------------------------------------------- registry

TEST(ObsRegistryTest, SameNameReturnsSameObject) {
  MetricsRegistry registry;
  Counter* a = registry.GetCounter("requests", "help");
  Counter* b = registry.GetCounter("requests");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a, b);
  a->Add(7);
  EXPECT_EQ(b->Value(), 7u);
}

TEST(ObsRegistryTest, KindMismatchReturnsNull) {
  MetricsRegistry registry;
  ASSERT_NE(registry.GetCounter("metric"), nullptr);
  EXPECT_EQ(registry.GetGauge("metric"), nullptr);
  EXPECT_EQ(registry.GetHistogram("metric"), nullptr);
  EXPECT_EQ(registry.GetFloatCounter("metric"), nullptr);
}

TEST(ObsRegistryTest, SnapshotAndReset) {
  MetricsRegistry registry;
  registry.GetCounter("c")->Add(5);
  registry.GetFloatCounter("f")->Add(1.25);
  registry.GetGauge("g")->Set(3.0);
  registry.GetHistogram("h")->Record(10.0);

  MetricsSnapshot snap = registry.Snapshot();
  ASSERT_EQ(snap.metrics.size(), 4u);
  EXPECT_GE(snap.window_seconds, 0.0);
  const MetricValue* c = snap.Find("c");
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->kind, MetricKind::kCounter);
  EXPECT_EQ(c->u64, 5u);
  EXPECT_DOUBLE_EQ(c->value, 5.0);
  EXPECT_DOUBLE_EQ(snap.Find("f")->value, 1.25);
  EXPECT_DOUBLE_EQ(snap.Find("g")->value, 3.0);
  EXPECT_EQ(snap.Find("h")->hist.count, 1u);
  EXPECT_EQ(snap.Find("missing"), nullptr);

  registry.Reset();
  snap = registry.Snapshot();
  EXPECT_EQ(snap.Find("c")->u64, 0u);
  EXPECT_DOUBLE_EQ(snap.Find("f")->value, 0.0);
  EXPECT_DOUBLE_EQ(snap.Find("g")->value, 0.0);
  EXPECT_EQ(snap.Find("h")->hist.count, 0u);
}

// ---------------------------------------------------------------- sampling

TEST(ObsSampleTest, PeriodZeroAndOne) {
  for (std::uint64_t seed = 0; seed < 100; ++seed) {
    EXPECT_FALSE(SampleTrace(seed, 0));
    EXPECT_TRUE(SampleTrace(seed, 1));
  }
}

TEST(ObsSampleTest, DeterministicPerSeed) {
  for (std::uint64_t seed = 0; seed < 1000; ++seed) {
    EXPECT_EQ(SampleTrace(seed, 16), SampleTrace(seed, 16));
  }
}

TEST(ObsSampleTest, SamplesAtRoughlyOneOverPeriod) {
  constexpr std::uint32_t kPeriod = 16;
  constexpr std::uint64_t kSeeds = 10000;
  std::uint64_t sampled = 0;
  for (std::uint64_t seed = 0; seed < kSeeds; ++seed) {
    sampled += SampleTrace(seed, kPeriod);
  }
  // Expectation 625; the mixed stream should land comfortably in a wide
  // band around it (this also catches a degenerate always/never sampler).
  EXPECT_GT(sampled, 450u);
  EXPECT_LT(sampled, 800u);
}

// ------------------------------------------------------------------ export

TEST(ObsExportTest, PrometheusTextFormat) {
  MetricsRegistry registry;
  registry.GetCounter("rabitq_queries_total", "Queries served")->Add(3);
  registry.GetGauge("rabitq_live_vectors")->Set(42.0);
  Histogram* hist = registry.GetHistogram("rabitq_query_latency_us");
  hist->Record(3.0);
  hist->Record(3.0);
  hist->Record(100.0);

  const std::string text = ExportPrometheus(registry.Snapshot());
  EXPECT_NE(text.find("# HELP rabitq_queries_total Queries served\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE rabitq_queries_total counter\n"),
            std::string::npos);
  EXPECT_NE(text.find("rabitq_queries_total 3\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE rabitq_live_vectors gauge\n"),
            std::string::npos);
  EXPECT_NE(text.find("rabitq_live_vectors 42\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE rabitq_query_latency_us histogram\n"),
            std::string::npos);
  // Cumulative bucket counts: 2 at the 3.0-bucket edge, 3 at +Inf.
  EXPECT_NE(text.find("} 2\n"), std::string::npos);
  EXPECT_NE(text.find("rabitq_query_latency_us_bucket{le=\"+Inf\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("rabitq_query_latency_us_sum 106\n"),
            std::string::npos);
  EXPECT_NE(text.find("rabitq_query_latency_us_count 3\n"),
            std::string::npos);
}

TEST(ObsExportTest, JsonShape) {
  MetricsRegistry registry;
  registry.GetCounter("c")->Add(9);
  registry.GetFloatCounter("f")->Add(0.5);
  registry.GetGauge("g")->Set(-1.5);
  registry.GetHistogram("h")->Record(2.0);

  const std::string json = ExportJson(registry.Snapshot());
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"window_seconds\":"), std::string::npos);
  EXPECT_NE(json.find("\"counters\":{"), std::string::npos);
  EXPECT_NE(json.find("\"c\":9"), std::string::npos);
  EXPECT_NE(json.find("\"f\":0.5"), std::string::npos);
  EXPECT_NE(json.find("\"gauges\":{\"g\":-1.5}"), std::string::npos);
  EXPECT_NE(json.find("\"histograms\":{\"h\":{\"count\":1,"),
            std::string::npos);
}

}  // namespace
}  // namespace obs
}  // namespace rabitq
